//! The sharded engine: routing, halo replication, and reconciliation.
//!
//! # Design
//!
//! The network is split into `S` connected regions
//! ([`rnn_roadnet::NetworkPartition`]). Each region is owned by a shard: a
//! worker thread running a full [`ContinuousMonitor`] over the *shared*
//! topology (an `Arc<RoadNetwork>`) but tracking only the objects and
//! queries routed to it. Queries live with the shard owning their edge;
//! objects live with their owner shard **plus** every shard whose *halo*
//! they fall into.
//!
//! ## Halo correctness argument
//!
//! A query `q` in shard `s` with result radius `d = kNN_dist(q)` only
//! inspects network points within distance `d` of `q`. Any such point `p`
//! outside region `s` is reached by a path that exits the region through a
//! boundary node `b`, so `dist(b, p) ≤ d`. Hence if shard `s` additionally
//! sees every object within distance `r_s ≥ max_q kNN_dist(q)` of its
//! boundary (the *halo*), the monitor's candidate set contains every true
//! neighbor of every owned query, and its answers equal a single global
//! monitor's.
//!
//! `kNN_dist` is only known *after* computing results, so the engine closes
//! the loop iteratively: tick the shards, read back each query's
//! `kNN_dist`, and where it exceeds the shard's current halo radius, grow
//! the halo (a bounded multi-source Dijkstra from the shard's boundary
//! nodes under the current weights), ship the newly visible objects in, and
//! tick again. Adding objects can only *shrink* `kNN_dist`, so the needed
//! radius is non-increasing and the loop terminates — in steady state it
//! converges immediately and the extra rounds are rare. Halo membership is
//! also refreshed whenever edge weights change, since it is defined in
//! terms of weighted distances.
//!
//! Underfull queries (`kNN_dist = ∞`, fewer than `k` objects visible) need
//! the whole reachable network; their demand is capped at a finite
//! **diameter bound** (the sum of current edge weights, which no simple
//! shortest path can exceed — [`rnn_roadnet::EdgeWeights::total`]), so halo
//! radii stay finite and comparable.
//!
//! ## Replica lifecycle: grow, shrink, evict
//!
//! Halos *grow* eagerly (any tick where a query's `kNN_dist` exceeds its
//! shard's radius, correctness demands it) and *shrink* lazily: each tick
//! the engine re-derives every shard's needed radius, and when the current
//! radius has stayed above `needed × (1 + halo_slack) ×
//! halo_shrink_trigger` for [`EngineConfig::halo_shrink_ticks`] consecutive
//! ticks, it decays to `needed × (1 + halo_slack)` and the replicas beyond
//! it are **evicted**. Shrinking never changes answers: evicted objects lie
//! farther from the boundary than every owned query's `kNN_dist`, so they
//! cannot appear in any result. The hysteresis (trigger ratio + tick count)
//! prevents grow/shrink flapping when `kNN_dist` oscillates.
//!
//! ## Incremental replica maintenance
//!
//! Replica membership is a pure function of each object's edge: bit `s` of
//! [`ShardedEngine::edge_mask`] says whether shard `s` must see objects on
//! that edge. When a halo is rebuilt, only the edges whose membership
//! actually *toggled* can invalidate an object's replica set, so the engine
//! re-derives masks only for the objects resident on those edges — found
//! through an [`EdgeObjectIndex`] maintained on every routed object event —
//! instead of rescanning all `N` objects. The work is O(objects on changed
//! edges), observable through the `resync_touched` counter.

use std::sync::Arc;
use std::time::Instant;

use rnn_core::{
    ContinuousMonitor, MemoryUsage, Neighbor, ObjectEvent, QueryEvent, TickReport, UpdateBatch,
    UpdateEvent,
};
use rnn_roadnet::{
    DijkstraEngine, EdgeId, EdgeObjectIndex, EdgeWeights, FxHashMap, FxHashSet, NetPoint,
    NetworkPartition, ObjectId, QueryId, RoadNetwork,
};

use crate::config::EngineConfig;
use crate::ingest::{IngestHandle, IngestHub};
use crate::protocol::{BatchKind, DeltaBatch, Request, Response, ShardLink};
use crate::worker::ShardWorker;

/// Why a sharded engine could not be constructed. The typed form (rather
/// than a panic) lets the cluster coordinator surface configuration
/// mistakes over RPC instead of tearing down the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// `EngineConfig::num_shards` was outside the accepted `1..=64` range
    /// (shard visibility is tracked in a 64-bit mask per edge, and a
    /// partition needs at least one shard).
    InvalidShardCount {
        /// The rejected shard count.
        got: usize,
    },
    /// The number of pre-built shard links handed to
    /// [`ShardedEngine::with_links`] did not match `cfg.num_shards`.
    LinkCountMismatch {
        /// Links provided.
        links: usize,
        /// Shards configured.
        shards: usize,
    },
    /// A tuning knob failed [`crate::EngineConfigBuilder::build`]
    /// validation (non-finite ratio, zero ingest capacity, …).
    InvalidKnob {
        /// The offending field, as named on [`crate::EngineConfig`].
        field: &'static str,
        /// What the field must satisfy.
        requirement: &'static str,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidShardCount { got } => write!(
                f,
                "EngineConfig::num_shards must be in 1..=64, got {got} \
                 (shard visibility is a 64-bit mask per edge)"
            ),
            EngineError::LinkCountMismatch { links, shards } => write!(
                f,
                "ShardedEngine::with_links needs exactly one link per shard: \
                 got {links} links for {shards} shards"
            ),
            EngineError::InvalidKnob { field, requirement } => {
                write!(f, "EngineConfig::{field} must be {requirement}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

struct ObjRec {
    pos: NetPoint,
    /// Bit `s` set = shard `s` currently holds this object (owner or
    /// replica).
    mask: u64,
}

/// Events routed to one shard but not yet shipped. Converted into a
/// [`DeltaBatch`] (which adds the shared edge arena) at dispatch time.
#[derive(Default)]
struct PendingEvents {
    objects: Vec<ObjectEvent>,
    queries: Vec<QueryEvent>,
}

struct QueryRec {
    k: usize,
    shard: u32,
    pos: NetPoint,
    knn_dist: f64,
    result: Vec<Neighbor>,
}

/// One shard's halo edge set, **ring-structured**: every member edge is
/// stored with its *boundary distance* (the minimum settle distance of its
/// adjacent settled nodes during the halo expansion), and the membership is
/// additionally kept sorted by that distance. A shrink then drops exactly
/// the outer annulus — pop the sorted tail — without re-running the
/// boundary Dijkstra. Boundary distances only change when edge weights do,
/// and any weight change forces a full halo recompute earlier in the same
/// tick, so the recorded annuli are always current when the shrink runs.
#[derive(Default)]
struct HaloRing {
    /// Membership, with each edge's boundary distance.
    dist: FxHashMap<EdgeId, f64>,
    /// Member edges sorted ascending by boundary distance (ties by id).
    by_dist: Vec<(f64, EdgeId)>,
}

impl HaloRing {
    #[inline]
    fn contains(&self, e: EdgeId) -> bool {
        self.dist.contains_key(&e)
    }

    fn memory_bytes(&self) -> usize {
        self.dist.capacity() * (std::mem::size_of::<EdgeId>() + std::mem::size_of::<f64>())
            + self.by_dist.capacity() * std::mem::size_of::<(f64, EdgeId)>()
    }
}

/// A sharded, multi-threaded continuous-monitoring engine that is
/// answer-identical to a single monitor over the whole network.
///
/// Implements [`ContinuousMonitor`] itself, so it drops into every place a
/// single-threaded monitor fits (scenario drivers, the bench harness, the
/// differential tests).
///
/// The engine is generic over its shard channel: the default
/// [`ShardWorker`] runs each monitor on an in-process thread, while the
/// cluster crate plugs in RPC links to out-of-process shards through
/// [`ShardedEngine::with_links`]. All routing, halo, and rebalance logic
/// is identical across link kinds.
pub struct ShardedEngine<L: ShardLink = ShardWorker> {
    cfg: EngineConfig,
    partition: NetworkPartition,
    net: Arc<RoadNetwork>,
    /// The engine's authoritative copy of the fluctuating weights (needed
    /// for halo distance computations).
    weights: EdgeWeights,
    /// Finite stand-in for "replicate everything": an upper bound on any
    /// shortest-path distance under the current weights. Cached lazily —
    /// the O(E) refresh only runs when a weight change has invalidated it
    /// *and* an underfull query actually needs the cap.
    diam_cache: f64,
    diam_dirty: bool,
    scratch: DijkstraEngine,
    workers: Vec<L>,
    /// Current halo radius per shard. Grows eagerly on demand, shrinks
    /// lazily with hysteresis (see module docs).
    halo_r: Vec<f64>,
    /// Consecutive ticks each shard's halo has been oversized (the shrink
    /// hysteresis counter).
    shrink_streak: Vec<u32>,
    /// Foreign edges inside each shard's halo, ring-structured (distance
    /// annuli) so shrinks drop only the outer ring.
    halo_edges: Vec<HaloRing>,
    /// Per-edge visibility mask: bit `s` = edge is owned by or in the halo
    /// of shard `s`.
    edge_mask: Vec<u64>,
    objects: FxHashMap<ObjectId, ObjRec>,
    /// Edge → resident objects, maintained on every routed object event.
    /// Lets halo rebuilds resync only the objects on changed edges.
    edge_obj: EdgeObjectIndex,
    queries: FxHashMap<QueryId, QueryRec>,
    /// Edge → resident queries, maintained on every routed query event.
    /// Lets cell migration re-home only the queries on moved cells.
    edge_queries: FxHashMap<EdgeId, Vec<QueryId>>,
    /// Events routed but not yet shipped, one buffer per shard.
    pending: Vec<PendingEvents>,
    /// This tick's edge-weight updates, accumulated once and shipped to
    /// every shard as one shared `Arc` arena at the next dispatch.
    pending_edges: Vec<rnn_core::EdgeWeightUpdate>,
    /// Reused empty arena for dispatch rounds with no edge updates (every
    /// reconcile round after the first), avoiding a per-round allocation.
    empty_arena: Arc<Vec<rnn_core::EdgeWeightUpdate>>,
    /// GMA active-node counts per shard, from the latest outcomes.
    active: Vec<Option<usize>>,
    /// Pre-tick results of queries touched during the current tick, so
    /// reconcile-round flaps that end where they started do not count as
    /// changes.
    changed: FxHashMap<QueryId, Vec<Neighbor>>,
    /// Monitor-side aggregate for the current tick: critical-path elapsed
    /// (max across a round's parallel workers, summed across rounds) and
    /// summed op counters.
    workers_report: TickReport,
    /// Objects examined by replica resync — lifetime total and current-tick
    /// slice (the latter feeds the tick's `OpCounters`). Counts *distinct*
    /// objects per maintenance cycle (`resync_seen` dedups revisits when an
    /// edge toggles more than once in a tick), so a single tick's count
    /// can never exceed the object total.
    total_resync_touched: u64,
    tick_resync_touched: u64,
    resync_seen: FxHashSet<ObjectId>,
    /// Replicas evicted by halo shrink / membership loss — lifetime total
    /// and current-tick slice.
    total_replica_evictions: u64,
    tick_replica_evictions: u64,
    /// Per-shard load observed since the last fold: worker
    /// `expansion_steps` plus routed events, accumulated across every
    /// dispatch round (deterministic — no wall clock).
    tick_load: Vec<u64>,
    /// Smoothed per-shard load estimate (exponential average of
    /// `tick_load` across ticks) — the imbalance detector's input.
    load: Vec<f64>,
    /// Per-cell expansion work observed since the last fold: workers
    /// attribute each expansion's Dijkstra steps to the cell (edge) of the
    /// expansion root, and the charges accumulate here across dispatch
    /// rounds.
    tick_cell_load: FxHashMap<EdgeId, u64>,
    /// Smoothed per-cell load estimate (exponential average of
    /// `tick_cell_load` across ticks). The migration planner ranks
    /// candidate border cells by this *true* cost, falling back to
    /// resident-entity counts for cells that never hosted an expansion.
    cell_load: FxHashMap<EdgeId, f64>,
    /// Ticks since the last rebalance (hysteresis/cooldown counter).
    ticks_since_rebalance: u32,
    /// Rebalances executed / cells migrated — lifetime totals and
    /// current-tick slices.
    total_rebalances: u64,
    tick_rebalances: u64,
    total_cells_migrated: u64,
    tick_cells_migrated: u64,
    /// Shards declared permanently down (`Response::Down`: the link's
    /// transport died and recovery exhausted every retry). A dead shard
    /// owns no cells, holds no halo, and is excluded from every dispatch
    /// and from the rebalance planner; with [`EngineConfig::takeover`] its
    /// former cells were adopted by survivors.
    dead: Vec<bool>,
    /// Lifetime count of dead-shard takeovers executed (each one
    /// [`Self::adopt_dead_shard`] run: the corpse's cells, replicas and
    /// queries re-homed onto survivors).
    total_takeovers: u64,
    /// The out-of-band ingest stage ([`crate::ingest`]): producers
    /// submit through [`Self::ingest_handle`] clones, and
    /// [`Self::tick_ingest`] drains at tick boundaries.
    ingest: IngestHub,
    /// Reused drain target for [`Self::tick_ingest`] — cleared, refilled
    /// by the hub, and handed to [`ContinuousMonitor::tick`] without
    /// cloning event slices.
    ingest_batch: UpdateBatch,
}

/// Weight of the exponential load smoothing: each tick contributes half,
/// so a hotspot must persist a few ticks before it dominates the estimate
/// (part of the rebalance hysteresis) while a migrated-away hotspot decays
/// just as fast.
const LOAD_SMOOTHING: f64 = 0.5;

/// A rebalance never moves more than this fraction of the hot shard's
/// cells at once — migrations stay incremental even under extreme skew.
const MAX_MIGRATION_FRACTION: f64 = 0.25;

impl ShardedEngine<ShardWorker> {
    /// Partitions `net` and spawns one monitor worker per shard.
    ///
    /// # Panics
    /// Panics if `cfg.num_shards` is outside `1..=64` — shard visibility is
    /// tracked in a 64-bit mask per edge, and a partition needs at least
    /// one shard. Use [`Self::try_new`] for a recoverable error instead.
    pub fn new(net: Arc<RoadNetwork>, cfg: EngineConfig) -> Self {
        Self::try_new(net, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible construction: partitions `net` and spawns one monitor
    /// worker per shard, or reports why the configuration is unusable
    /// (so a coordinator can surface the error over RPC rather than
    /// panicking).
    pub fn try_new(net: Arc<RoadNetwork>, cfg: EngineConfig) -> Result<Self, EngineError> {
        cfg.validate()?;
        // Per-cell load attribution only feeds the rebalance planner, so
        // workers skip the per-tick charge hand-off entirely when
        // rebalancing is disabled (the default).
        let attribute_cells = cfg.attribute_cells();
        let workers = (0..cfg.num_shards)
            .map(|s| ShardWorker::spawn(s, cfg.make_monitor(net.clone()), attribute_cells))
            .collect();
        Ok(Self::from_parts(net, cfg, workers))
    }
}

impl<L: ShardLink> ShardedEngine<L> {
    /// Builds the engine over pre-established shard links — one per shard,
    /// in shard order. This is how the cluster coordinator reuses the
    /// engine's routing/halo/rebalance logic over RPC links: each link's
    /// far end must run a fresh monitor speaking the
    /// [`crate::protocol`] request/response discipline.
    pub fn with_links(
        net: Arc<RoadNetwork>,
        cfg: EngineConfig,
        links: Vec<L>,
    ) -> Result<Self, EngineError> {
        cfg.validate()?;
        if links.len() != cfg.num_shards {
            return Err(EngineError::LinkCountMismatch {
                links: links.len(),
                shards: cfg.num_shards,
            });
        }
        Ok(Self::from_parts(net, cfg, links))
    }

    /// Shared constructor body (`cfg.num_shards` already validated).
    fn from_parts(net: Arc<RoadNetwork>, cfg: EngineConfig, workers: Vec<L>) -> Self {
        let partition = NetworkPartition::build(&net, cfg.num_shards);
        let edge_mask = net
            .edge_ids()
            .map(|e| 1u64 << partition.shard_of_edge(e))
            .collect::<Vec<_>>();
        let weights = EdgeWeights::from_base(&net);
        let diam_cache = diameter_bound(&weights);
        let scratch = DijkstraEngine::new(net.num_nodes());
        Self {
            partition,
            weights,
            diam_cache,
            diam_dirty: false,
            scratch,
            workers,
            halo_r: vec![0.0; cfg.num_shards],
            shrink_streak: vec![0; cfg.num_shards],
            halo_edges: (0..cfg.num_shards).map(|_| HaloRing::default()).collect(),
            edge_mask,
            objects: FxHashMap::default(),
            edge_obj: EdgeObjectIndex::new(net.num_edges()),
            queries: FxHashMap::default(),
            edge_queries: FxHashMap::default(),
            pending: (0..cfg.num_shards)
                .map(|_| PendingEvents::default())
                .collect(),
            pending_edges: Vec::new(),
            empty_arena: Arc::new(Vec::new()),
            active: vec![None; cfg.num_shards],
            changed: FxHashMap::default(),
            workers_report: TickReport::default(),
            total_resync_touched: 0,
            tick_resync_touched: 0,
            resync_seen: FxHashSet::default(),
            total_replica_evictions: 0,
            tick_replica_evictions: 0,
            tick_load: vec![0; cfg.num_shards],
            load: vec![0.0; cfg.num_shards],
            tick_cell_load: FxHashMap::default(),
            cell_load: FxHashMap::default(),
            ticks_since_rebalance: 0,
            total_rebalances: 0,
            tick_rebalances: 0,
            total_cells_migrated: 0,
            tick_cells_migrated: 0,
            dead: vec![false; cfg.num_shards],
            total_takeovers: 0,
            ingest: IngestHub::new(cfg.ingest),
            ingest_batch: UpdateBatch::default(),
            net,
            cfg,
        }
    }

    /// The partition the engine runs on.
    pub fn partition(&self) -> &NetworkPartition {
        &self.partition
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.cfg.num_shards
    }

    /// The per-shard links, in shard order (exposed so link-specific
    /// state — e.g. a remote link's transport counters — stays reachable
    /// behind the engine).
    pub fn links(&self) -> &[L] {
        &self.workers
    }

    /// Current halo radius of shard `s`.
    pub fn halo_radius(&self, s: usize) -> f64 {
        self.halo_r[s]
    }

    /// The finite cap applied to "replicate everything" halo demand: an
    /// upper bound on any shortest-path distance under the current weights.
    /// Diagnostic accessor; computes fresh from the weight table (O(E)).
    pub fn diameter_bound(&self) -> f64 {
        diameter_bound(&self.weights)
    }

    /// The cached diameter bound, refreshed (O(E)) only when weights have
    /// changed since it was last needed.
    fn current_diam_bound(&mut self) -> f64 {
        if self.diam_dirty {
            self.diam_cache = diameter_bound(&self.weights);
            self.diam_dirty = false;
        }
        self.diam_cache
    }

    /// Total number of object replicas currently shipped to non-owner
    /// shards (a measure of the replication overhead).
    pub fn replica_count(&self) -> usize {
        self.objects
            .values()
            .map(|o| o.mask.count_ones() as usize - 1)
            .sum()
    }

    /// Lifetime count of objects examined by replica resync (distinct per
    /// maintenance cycle — a tick or an out-of-band install/insert).
    /// Proves the O(changed-edges) claim: a halo rebuild visits only the
    /// residents of the edges whose membership toggled, not the whole
    /// object table, so a single tick can never reach the object count.
    pub fn resync_touched(&self) -> u64 {
        self.total_resync_touched
    }

    /// Lifetime count of replicas evicted by halo shrink or halo-membership
    /// loss.
    pub fn replica_evictions(&self) -> u64 {
        self.total_replica_evictions
    }

    /// Lifetime count of load-aware rebalances (each one migration of
    /// boundary cells from the most loaded shard to an underloaded
    /// neighbour).
    pub fn rebalance_events(&self) -> u64 {
        self.total_rebalances
    }

    /// Lifetime count of partition cells (edges) whose ownership moved to
    /// another shard during rebalancing.
    pub fn cells_migrated(&self) -> u64 {
        self.total_cells_migrated
    }

    /// The smoothed per-shard load estimates driving the imbalance
    /// detector (worker `expansion_steps` + routed events, exponentially
    /// averaged across ticks).
    pub fn shard_loads(&self) -> &[f64] {
        &self.load
    }

    /// Lifetime count of dead-shard takeovers executed: each one is a full
    /// [`Self::adopt_dead_shard`] run, re-homing a permanently-down shard's
    /// cells, replicas and queries onto survivors through the migration
    /// machinery. Stays 0 unless [`EngineConfig::takeover`] is enabled and
    /// a shard actually died.
    pub fn takeovers(&self) -> u64 {
        self.total_takeovers
    }

    /// A producer handle onto the engine's ingest stage. Clone freely
    /// and hand to feed threads; events queue (under
    /// [`EngineConfig::ingest`]'s bounds and admission policy) until the
    /// driver calls [`Self::tick_ingest`].
    pub fn ingest_handle(&self) -> IngestHandle {
        self.ingest.handle()
    }

    /// Drains everything submitted since the last drain — coalescing
    /// multiple reports per entity to the final position (§4.5) — and
    /// runs one tick over the result. The drain's accounting
    /// (`coalesced_superseded`, `shed_events`, `drain_alloc_events`)
    /// is folded into the returned report's counters.
    ///
    /// With no coalescing triggered, this is bit-identical to building
    /// the same [`UpdateBatch`] by hand in submission order and calling
    /// [`ContinuousMonitor::tick`].
    pub fn tick_ingest(&mut self) -> TickReport {
        let mut batch = std::mem::take(&mut self.ingest_batch);
        batch.clear();
        let stats = self.ingest.drain_into(&mut batch);
        let mut report = self.tick(&batch);
        report.counters.coalesced_superseded += stats.coalesced_superseded;
        report.counters.shed_events += stats.shed_events;
        report.counters.drain_alloc_events += stats.drain_alloc_events;
        self.ingest_batch = batch;
        report
    }

    /// Whether shard `s` has been declared permanently down.
    pub fn is_shard_dead(&self, s: usize) -> bool {
        self.dead[s]
    }

    /// Number of shards still alive.
    pub fn live_shards(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// The smoothed expansion cost attributed to one partition cell (the
    /// edge of the expansion roots charged to it), or 0 when no expansion
    /// has been observed there. The migration planner ranks candidate
    /// border cells by this value plus their resident entities.
    pub fn cell_load(&self, e: EdgeId) -> f64 {
        self.cell_load.get(&e).copied().unwrap_or(0.0)
    }

    /// Monitor-side aggregate of the last tick: critical-path elapsed time
    /// (max across each dispatch round's parallel workers, summed across
    /// rounds) and summed op counters. Excludes the router's own work —
    /// compare with the engine's own `TickReport::elapsed` to see
    /// routing/hand-off overhead.
    pub fn worker_report(&self) -> TickReport {
        self.workers_report
    }

    /// Checks the internal replication invariants, for tests and debugging:
    /// every object's shard mask matches its edge's visibility mask, the
    /// edge→object index mirrors the object table exactly, and the per-edge
    /// masks are consistent with ownership plus the halo edge sets.
    pub fn validate_replication(&self) -> Result<(), String> {
        self.partition.validate(&self.net)?;
        let indexed_queries: usize = self.edge_queries.values().map(Vec::len).sum();
        if indexed_queries != self.queries.len() {
            return Err(format!(
                "query index holds {indexed_queries} queries but the registry holds {}",
                self.queries.len()
            ));
        }
        for (&id, rec) in &self.queries {
            if self.partition.shard_of_edge(rec.pos.edge) != rec.shard {
                return Err(format!(
                    "query {id:?} routed to shard {} but its edge {:?} is owned by {}",
                    rec.shard,
                    rec.pos.edge,
                    self.partition.shard_of_edge(rec.pos.edge)
                ));
            }
            if !self
                .edge_queries
                .get(&rec.pos.edge)
                .is_some_and(|b| b.contains(&id))
            {
                return Err(format!(
                    "query {id:?} not indexed on its edge {:?}",
                    rec.pos.edge
                ));
            }
        }
        if self.edge_obj.len() != self.objects.len() {
            return Err(format!(
                "index holds {} objects but the registry holds {}",
                self.edge_obj.len(),
                self.objects.len()
            ));
        }
        for (&id, rec) in &self.objects {
            let expect = self.edge_mask[rec.pos.edge.index()];
            if rec.mask != expect {
                return Err(format!(
                    "object {id:?} on {:?}: mask {:#b} != edge mask {expect:#b}",
                    rec.pos.edge, rec.mask
                ));
            }
            let owner = self.partition.shard_of_edge(rec.pos.edge);
            if rec.mask & (1u64 << owner) == 0 {
                return Err(format!("object {id:?} missing its owner shard {owner}"));
            }
            if !self.edge_obj.objects_on(rec.pos.edge).contains(&id) {
                return Err(format!(
                    "object {id:?} not indexed on its edge {:?}",
                    rec.pos.edge
                ));
            }
        }
        for e in self.net.edge_ids() {
            let mut expect = 1u64 << self.partition.shard_of_edge(e);
            for (s, halo) in self.halo_edges.iter().enumerate() {
                if halo.contains(e) {
                    if self.partition.shard_of_edge(e) == s as u32 {
                        return Err(format!("shard {s} lists its own edge {e:?} as halo"));
                    }
                    expect |= 1u64 << s;
                }
            }
            if self.edge_mask[e.index()] != expect {
                return Err(format!(
                    "edge {e:?}: mask {:#b} != ownership+halo {expect:#b}",
                    self.edge_mask[e.index()]
                ));
            }
        }
        Ok(())
    }

    // --- Halo maintenance -------------------------------------------------

    /// Recomputes shard `s`'s halo edge set under the current weights and
    /// radius (one bounded multi-source Dijkstra from the shard boundary),
    /// adding every edge whose membership toggled to `changed`. Also
    /// refreshes the ring structure (each member's boundary distance) that
    /// [`Self::shrink_halo_ring`] later pops from.
    fn recompute_halo(&mut self, s: usize, changed: &mut FxHashSet<EdgeId>) {
        let r = self.halo_r[s];
        let mut fresh: FxHashMap<EdgeId, f64> = FxHashMap::default();
        let boundary = &self.partition.view(s).boundary_nodes;
        if r > 0.0 && !boundary.is_empty() {
            self.scratch.begin();
            for &b in boundary {
                self.scratch.seed(b, 0.0, None);
            }
            while let Some((n, d)) = self.scratch.pop_settle() {
                if d > r {
                    break;
                }
                for &(e, m) in self.net.adjacent(n) {
                    if self.partition.shard_of_edge(e) != s as u32 {
                        fresh.entry(e).and_modify(|x| *x = x.min(d)).or_insert(d);
                    }
                    let nd = d + self.weights.get(e);
                    if nd <= r {
                        self.scratch.relax(m, n, nd);
                    }
                }
            }
        }
        let bit = 1u64 << s;
        let ring = &mut self.halo_edges[s];
        for &e in ring.dist.keys() {
            if !fresh.contains_key(&e) {
                self.edge_mask[e.index()] &= !bit;
                changed.insert(e);
            }
        }
        for &e in fresh.keys() {
            if !ring.dist.contains_key(&e) {
                self.edge_mask[e.index()] |= bit;
                changed.insert(e);
            }
        }
        ring.by_dist.clear();
        ring.by_dist.extend(fresh.iter().map(|(&e, &d)| (d, e)));
        ring.by_dist
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        ring.dist = fresh;
    }

    /// Ring-structured shrink: after `halo_r[s]` has decayed, drops exactly
    /// the edges in the annulus beyond the new radius by popping the sorted
    /// tail of the ring — O(dropped edges), no Dijkstra re-expansion. A
    /// radius of zero empties the halo (membership requires a settled node
    /// within a *positive* radius, matching [`Self::recompute_halo`]).
    fn shrink_halo_ring(&mut self, s: usize, changed: &mut FxHashSet<EdgeId>) {
        let r = self.halo_r[s];
        let cutoff = if r > 0.0 { r } else { f64::NEG_INFINITY };
        let bit = 1u64 << s;
        let ring = &mut self.halo_edges[s];
        while let Some(&(d, e)) = ring.by_dist.last() {
            if d <= cutoff {
                break;
            }
            ring.by_dist.pop();
            ring.dist.remove(&e);
            self.edge_mask[e.index()] &= !bit;
            changed.insert(e);
        }
    }

    /// Re-derives the desired shard set of every object resident on a
    /// *changed* edge (via the edge→object index) and queues insert/delete
    /// events for the differences. O(objects on changed edges) — the whole
    /// point of this subsystem; see the module docs.
    fn resync_changed(&mut self, changed: &FxHashSet<EdgeId>) {
        let mut touched = 0u64;
        let mut evicted = 0u64;
        for &e in changed {
            let desired = self.edge_mask[e.index()];
            for &id in self.edge_obj.objects_on(e) {
                // An edge can toggle out of and back into halos within one
                // tick (e.g. a weight change followed by reconcile growth);
                // count each object once per cycle so the counter stays a
                // faithful "fraction of N examined" measure.
                if self.resync_seen.insert(id) {
                    touched += 1;
                }
                let rec = self
                    .objects
                    .get_mut(&id)
                    .expect("indexed object must be registered");
                debug_assert_eq!(rec.pos.edge, e, "index bucket out of sync");
                if rec.mask == desired {
                    continue;
                }
                let added = desired & !rec.mask;
                let removed = rec.mask & !desired;
                for s in ShardBits(added) {
                    self.pending[s]
                        .objects
                        .push(ObjectEvent::Insert { id, at: rec.pos });
                }
                for s in ShardBits(removed) {
                    self.pending[s].objects.push(ObjectEvent::Delete { id });
                }
                evicted += u64::from(removed.count_ones());
                rec.mask = desired;
            }
        }
        self.total_resync_touched += touched;
        self.tick_resync_touched += touched;
        self.total_replica_evictions += evicted;
        self.tick_replica_evictions += evicted;
    }

    // --- Dynamic load-aware re-partitioning -------------------------------

    /// The imbalance detector, run once at the start of every tick. When
    /// rebalancing is enabled (`rebalance_trigger ≥ 1`), the cooldown has
    /// elapsed, and the smoothed per-shard load satisfies
    /// `max > mean × trigger`, one migration of boundary cells runs from
    /// the most loaded shard to an underloaded neighbour.
    fn maybe_rebalance(&mut self) {
        if self.cfg.rebalance_trigger < 1.0 || self.live_shards() < 2 {
            return;
        }
        self.ticks_since_rebalance = self.ticks_since_rebalance.saturating_add(1);
        if self.ticks_since_rebalance <= self.cfg.rebalance_cooldown {
            return;
        }
        let total: f64 = self.load.iter().sum();
        if total <= 0.0 {
            return;
        }
        // Dead shards carry no load (zeroed at takeover), so summing over
        // all of them is fine — but the mean must be over survivors only.
        let mean = total / self.live_shards() as f64;
        let mut hot = usize::MAX;
        for s in 0..self.cfg.num_shards {
            if self.dead[s] {
                continue;
            }
            if hot == usize::MAX || self.load[s] > self.load[hot] {
                hot = s; // strict: ties resolve to the lowest shard id
            }
        }
        let hot_load = self.load[hot];
        if hot_load <= mean * self.cfg.rebalance_trigger {
            return;
        }
        let Some((cold, cells)) = self.plan_migration(hot) else {
            return; // no underloaded neighbour shares a border — stand pat
        };
        self.migrate_cells(hot, cold, &cells);
        self.ticks_since_rebalance = 0;
    }

    /// The migration planner: picks the least-loaded shard that shares a
    /// border with `hot` and the boundary cells to hand over. Cells are
    /// weighted by their **observed expansion cost** (the smoothed per-cell
    /// charge workers attribute to each expansion root's cell) plus their
    /// resident entities (1 + objects + queries; the fallback signal for
    /// cells that never hosted an expansion), and taken heaviest-first
    /// until roughly half the load gap has moved, capped at
    /// [`MAX_MIGRATION_FRACTION`] of the hot shard's cells so a single
    /// rebalance stays incremental. Fully deterministic: driven by the
    /// deterministic load estimates and sorted by `(weight desc, id)`.
    fn plan_migration(&self, hot: usize) -> Option<(usize, Vec<EdgeId>)> {
        let mut targets: Vec<usize> = (0..self.cfg.num_shards)
            .filter(|&s| s != hot && !self.dead[s])
            .collect();
        targets.sort_by(|&a, &b| self.load[a].total_cmp(&self.load[b]).then(a.cmp(&b)));
        for cold in targets {
            if self.load[cold] >= self.load[hot] {
                break; // only ever move load downhill
            }
            let cells = self
                .partition
                .boundary_cells_between(&self.net, hot as u32, cold as u32);
            if cells.is_empty() {
                continue; // not adjacent; try the next-coldest shard
            }
            let cell_weight = |e: EdgeId| -> u64 {
                1 + self.cell_load.get(&e).map_or(0, |&v| v.round() as u64)
                    + self.edge_obj.objects_on(e).len() as u64
                    + self.edge_queries.get(&e).map_or(0, |v| v.len() as u64)
            };
            let hot_weight: u64 = self
                .partition
                .view(hot)
                .edges
                .iter()
                .map(|&e| cell_weight(e))
                .sum();
            // Share of the hot shard's resident weight that should move:
            // half the relative load gap to the target.
            let gap = (self.load[hot] - self.load[cold]) / (2.0 * self.load[hot]);
            let target_weight = (hot_weight as f64 * gap).ceil() as u64;
            let cap = ((self.partition.view(hot).edges.len() as f64 * MAX_MIGRATION_FRACTION)
                .floor() as usize)
                .clamp(1, cells.len());
            let mut ranked: Vec<(u64, EdgeId)> =
                cells.into_iter().map(|e| (cell_weight(e), e)).collect();
            ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let mut chosen = Vec::new();
            let mut moved_weight = 0u64;
            for (w, e) in ranked {
                if chosen.len() >= cap || (moved_weight >= target_weight && !chosen.is_empty()) {
                    break;
                }
                chosen.push(e);
                moved_weight += w;
            }
            if !chosen.is_empty() {
                return Some((cold, chosen));
            }
        }
        None
    }

    /// Executes one planned migration: reassigns the cells in the
    /// partition, re-derives the two moved borders' halos, hands off the
    /// resident objects through the edge→object index (O(moved cells), the
    /// PR 2 delta machinery ships them), re-homes the resident queries, and
    /// closes the halo-coverage loop. The strict request/response worker
    /// protocol is the pause/resume barrier: no request is in flight when
    /// the partition mutates, and `dispatch_pending`/`reconcile` block on
    /// every shard's response before the tick proceeds — workers never
    /// observe a half-migrated partition.
    fn migrate_cells(&mut self, hot: usize, cold: usize, cells: &[EdgeId]) {
        let moves: Vec<(EdgeId, u32)> = cells.iter().map(|&e| (e, cold as u32)).collect();
        self.partition.reassign(&self.net, &moves);

        let (hot_bit, cold_bit) = (1u64 << hot, 1u64 << cold);
        let mut changed = FxHashSet::default();
        for &e in cells {
            // A moved cell may sit in the new owner's halo ring; it is now
            // owned, so drop it from the ring before the mask transfer (the
            // halo recompute below excludes owned edges by construction).
            let ring = &mut self.halo_edges[cold];
            if ring.dist.remove(&e).is_some() {
                ring.by_dist.retain(|&(_, re)| re != e);
            }
            self.edge_mask[e.index()] = (self.edge_mask[e.index()] & !hot_bit) | cold_bit;
            changed.insert(e);
        }
        // The border between the two shards moved, so both boundary-node
        // sets changed and their halo memberships are re-derived under the
        // new border. Other shards' boundaries are untouched: a moved cell
        // was foreign to them before and after, so their halo sets (and
        // replica masks) remain exactly valid.
        for s in [hot, cold] {
            if self.halo_r[s] > 0.0 {
                self.recompute_halo(s, &mut changed);
            }
        }
        // Hand off the residents of every changed edge — O(moved cells +
        // toggled halo edges) through the edge→object index.
        self.resync_changed(&changed);
        // Re-home the queries living on the migrated cells.
        for &e in cells {
            let Some(bucket) = self.edge_queries.get(&e) else {
                continue;
            };
            let mut qids = bucket.clone();
            qids.sort_unstable();
            for id in qids {
                let rec = self.queries.get_mut(&id).expect("indexed query registered");
                debug_assert_eq!(rec.pos.edge, e, "query index bucket out of sync");
                if rec.shard == hot as u32 {
                    let (k, at) = (rec.k, rec.pos);
                    self.pending[hot].queries.push(QueryEvent::Remove { id });
                    self.pending[cold]
                        .queries
                        .push(QueryEvent::Install { id, k, at });
                    rec.shard = cold as u32;
                }
            }
        }
        self.total_rebalances += 1;
        self.tick_rebalances += 1;
        self.total_cells_migrated += cells.len() as u64;
        self.tick_cells_migrated += cells.len() as u64;
        // Ship the hand-off and grow halos until every re-homed query's
        // result is covered again — the same loop that makes installs
        // answer-identical makes migrations answer-identical.
        self.dispatch_pending(BatchKind::Migration);
        self.reconcile();
    }

    // --- Dead-shard takeover ----------------------------------------------

    /// Recovery is rebalance away from a corpse: every cell the dead shard
    /// owned is reassigned to survivors through the same partition /
    /// mask-transfer / resync machinery as a planned migration
    /// ([`Self::migrate_cells`]), and the dead shard's queries re-home with
    /// freshly computed results on their adopters. Cells peel off along
    /// shared borders to the least-loaded adjacent survivor (keeping
    /// regions as connected as the planner would), with a bulk hand-off to
    /// the least-loaded survivor as the fallback for any remainder that
    /// borders no survivor.
    ///
    /// Answer-identity: objects resync from the coordinator's registry
    /// (the engine is the authority for positions), queries re-install and
    /// recompute from scratch on their adopter, and reconcile then grows
    /// adopter halos until every re-homed result is covered — the same
    /// loop that makes installs and migrations answer-identical.
    fn adopt_dead_shard(&mut self, dead: usize) {
        self.dead[dead] = true;
        self.total_takeovers += 1;
        let survivors: Vec<usize> = (0..self.cfg.num_shards)
            .filter(|&s| !self.dead[s])
            .collect();
        assert!(
            !survivors.is_empty(),
            "every shard is dead — no survivor can adopt shard {dead}'s cells"
        );
        // The corpse neither receives nor reports anything any more.
        self.pending[dead] = PendingEvents::default();
        self.active[dead] = None;
        self.load[dead] = 0.0;
        self.tick_load[dead] = 0;
        self.halo_r[dead] = 0.0;
        self.shrink_streak[dead] = 0;

        let dead_bit = 1u64 << dead;
        let mut changed = FxHashSet::default();
        // Its halo replicas die with it: clear the ring and the mask bit of
        // every member edge, so resync queues the (discarded) deletes and
        // the masks stay the invariant `ownership + live halos`.
        let ring = std::mem::take(&mut self.halo_edges[dead]);
        for &e in ring.dist.keys() {
            self.edge_mask[e.index()] &= !dead_bit;
            changed.insert(e);
        }
        // Peel the corpse's cells to survivors, border by border.
        let mut adopters = FxHashSet::default();
        while !self.partition.view(dead).edges.is_empty() {
            let mut targets = survivors.clone();
            targets.sort_by(|&a, &b| self.load[a].total_cmp(&self.load[b]).then(a.cmp(&b)));
            let mut batch: Option<(usize, Vec<EdgeId>)> = None;
            for &cold in &targets {
                let cells =
                    self.partition
                        .boundary_cells_between(&self.net, dead as u32, cold as u32);
                if !cells.is_empty() {
                    batch = Some((cold, cells));
                    break;
                }
            }
            // No survivor borders what is left (the remainder is an island
            // of the corpse's region): bulk-assign it to the least loaded.
            let (cold, cells) =
                batch.unwrap_or_else(|| (targets[0], self.partition.view(dead).edges.clone()));
            let moves: Vec<(EdgeId, u32)> = cells.iter().map(|&e| (e, cold as u32)).collect();
            self.partition.reassign(&self.net, &moves);
            let cold_bit = 1u64 << cold;
            for &e in &cells {
                // Same ring discipline as migrate_cells: an adopted cell may
                // sit in its adopter's halo ring; it is now owned.
                let ring = &mut self.halo_edges[cold];
                if ring.dist.remove(&e).is_some() {
                    ring.by_dist.retain(|&(_, re)| re != e);
                }
                self.edge_mask[e.index()] = (self.edge_mask[e.index()] & !dead_bit) | cold_bit;
                changed.insert(e);
            }
            adopters.insert(cold);
        }
        // Adopters' borders moved; other survivors' halo sets stay exactly
        // valid (an adopted cell was foreign to them before and after).
        let mut adopters: Vec<usize> = adopters.into_iter().collect();
        adopters.sort_unstable();
        for s in adopters {
            if self.halo_r[s] > 0.0 {
                self.recompute_halo(s, &mut changed);
            }
        }
        // Hand off every resident object whose mask toggled. Deletes
        // queued at the corpse are discarded by dispatch; inserts flow to
        // the adopters from the coordinator's registry.
        self.resync_changed(&changed);
        // Re-home the corpse's queries: Install on the new owner only — no
        // Remove is sent to a shard that cannot acknowledge it. The adopter
        // computes the result from scratch; the coordinator's cached result
        // is kept and must be re-confirmed bit-identical by the installed
        // query's first snapshot.
        let mut orphans: Vec<QueryId> = self
            .queries
            .iter()
            .filter(|(_, rec)| rec.shard == dead as u32)
            .map(|(&id, _)| id)
            .collect();
        orphans.sort_unstable();
        for id in orphans {
            let rec = self.queries.get_mut(&id).expect("orphan query registered");
            let shard = self.partition.shard_of_edge(rec.pos.edge);
            debug_assert!(!self.dead[shard as usize], "cells adopted by a corpse");
            rec.shard = shard;
            let (k, at) = (rec.k, rec.pos);
            self.pending[shard as usize]
                .queries
                .push(QueryEvent::Install { id, k, at });
        }
        // Ship it all and close the halo-coverage loop, exactly as a
        // planned migration does.
        self.dispatch_pending(BatchKind::Migration);
        self.reconcile();
    }

    // --- Dispatch ---------------------------------------------------------

    /// Ships every non-empty pending delta to its shard (the tick's edge
    /// updates ride along as one shared arena), waits for all outcomes, and
    /// folds them into the engine's caches. `kind` names the engine phase
    /// dispatching (tick / resync / migration) — shard processing is
    /// identical, but RPC links give each phase its own typed frame.
    /// Returns `true` if anything was sent.
    fn dispatch_pending(&mut self, kind: BatchKind) -> bool {
        let arena = if self.pending_edges.is_empty() {
            self.empty_arena.clone()
        } else {
            Arc::new(std::mem::take(&mut self.pending_edges))
        };
        let mut sent = vec![false; self.cfg.num_shards];
        let mut any = false;
        for (s, flag) in sent.iter_mut().enumerate() {
            let own = &mut self.pending[s];
            if self.dead[s] {
                // A corpse acknowledges nothing: anything still routed at it
                // (e.g. the Delete events resync queues while clearing its
                // replica bits) is discarded unsent.
                own.objects.clear();
                own.queries.clear();
                continue;
            }
            if own.objects.is_empty() && own.queries.is_empty() && arena.is_empty() {
                continue;
            }
            // Routed events are half the shard-load signal (the other half
            // is the worker's expansion_steps, folded in on receive).
            self.tick_load[s] += (own.objects.len() + own.queries.len()) as u64;
            let delta = DeltaBatch {
                objects: std::mem::take(&mut own.objects),
                queries: std::mem::take(&mut own.queries),
                shared_edges: arena.clone(),
                kind,
            };
            self.workers[s].send(Request::Tick(delta));
            *flag = true;
            any = true;
        }
        // Workers in one round run in parallel, so their reports fold with
        // max-elapsed semantics; successive rounds are sequential and add.
        let mut round = TickReport::default();
        let mut died: Vec<usize> = Vec::new();
        for (s, &was_sent) in sent.iter().enumerate() {
            if !was_sent {
                continue;
            }
            match self.workers[s].recv() {
                Response::Tick(outcome) => {
                    self.tick_load[s] += outcome.report.counters.expansion_steps;
                    for (e, steps) in outcome.cell_charges {
                        *self.tick_cell_load.entry(e).or_insert(0) += steps;
                    }
                    round.absorb_parallel(&outcome.report);
                    self.active[s] = outcome.active_groups;
                    for snap in outcome.snapshots {
                        let Some(rec) = self.queries.get_mut(&snap.id) else {
                            continue;
                        };
                        if rec.shard != s as u32 {
                            continue; // stale snapshot of a query mid-migration
                        }
                        rec.knn_dist = snap.knn_dist;
                        if rec.result != snap.result {
                            self.changed
                                .entry(snap.id)
                                .or_insert_with(|| rec.result.clone());
                            rec.result = snap.result;
                        }
                    }
                }
                Response::Down => {
                    // The link's transport died and its bounded recovery
                    // exhausted every retry. The shard's tick (including
                    // whatever we just sent it) is lost; survivors take
                    // over below, or the engine refuses to run degraded.
                    self.active[s] = None;
                    died.push(s);
                }
                Response::Memory(_) | Response::Snapshot(_) | Response::Restored(_) => {
                    unreachable!("non-tick response to a tick request")
                }
            }
        }
        self.workers_report.elapsed += round.elapsed;
        self.workers_report.counters.merge(&round.counters);
        for s in died {
            self.handle_dead_shard(s);
        }
        any
    }

    /// Reacts to a shard link reporting itself permanently down. Without
    /// [`EngineConfig::takeover`] this keeps the historical contract — a
    /// lost shard is fatal. With it, survivors adopt the corpse's cells.
    ///
    /// # Panics
    /// Panics when takeover is disabled, or when no live shard remains to
    /// adopt the corpse's cells.
    fn handle_dead_shard(&mut self, s: usize) {
        if self.dead[s] {
            return; // already buried (a late Down from a nested dispatch)
        }
        assert!(
            self.cfg.takeover,
            "shard {s} is permanently down (transport dead, recovery retries exhausted) \
             and EngineConfig::takeover is disabled"
        );
        self.adopt_dead_shard(s);
    }

    /// Grows halos until every query's `kNN_dist` is covered by its
    /// shard's halo radius, shipping newly visible objects as needed (see
    /// the module docs for why this terminates). Underfull demand (∞) is
    /// capped at the diameter bound, which already covers everything
    /// reachable. Returns the final per-shard needed radii, which the
    /// shrink pass reuses.
    fn reconcile(&mut self) -> Vec<f64> {
        let mut changed = FxHashSet::default();
        loop {
            let mut needed = vec![0.0f64; self.cfg.num_shards];
            for rec in self.queries.values() {
                let s = rec.shard as usize;
                needed[s] = needed[s].max(rec.knn_dist);
            }
            // Only underfull demand (∞) needs the diameter cap, and only
            // then is the (possibly O(E)) bound refresh worth paying.
            if needed.iter().any(|n| n.is_infinite()) {
                let cap = self.current_diam_bound();
                for n in &mut needed {
                    if n.is_infinite() {
                        *n = cap;
                    }
                }
            }
            changed.clear();
            for (s, &need) in needed.iter().enumerate() {
                if need > self.halo_r[s] {
                    self.halo_r[s] = need * (1.0 + self.cfg.halo_slack.max(0.0));
                    self.recompute_halo(s, &mut changed);
                }
            }
            if !changed.is_empty() {
                self.resync_changed(&changed);
            }
            if !self.dispatch_pending(BatchKind::Resync) {
                return needed;
            }
        }
    }

    /// The lazy half of the replica lifecycle: when a shard's halo radius
    /// has exceeded its demand (with slack and the hysteresis trigger
    /// ratio) for `halo_shrink_ticks` consecutive ticks, decay it to the
    /// demanded radius and evict the replicas beyond it. Safe by the same
    /// argument as growth, in reverse: everything evicted is farther from
    /// the boundary than every owned query's `kNN_dist`.
    fn maybe_shrink_halos(&mut self, needed: &[f64]) {
        let slack = 1.0 + self.cfg.halo_slack.max(0.0);
        let trigger = self.cfg.halo_shrink_trigger.max(1.0);
        let patience = self.cfg.halo_shrink_ticks.max(1);
        let mut changed = FxHashSet::default();
        for (s, &need) in needed.iter().enumerate() {
            let target = need * slack;
            if self.halo_r[s] > target * trigger {
                self.shrink_streak[s] += 1;
                if self.shrink_streak[s] >= patience {
                    self.halo_r[s] = target;
                    // Decay-only change: drop the outer annulus from the
                    // ring instead of re-running the boundary Dijkstra.
                    self.shrink_halo_ring(s, &mut changed);
                    self.shrink_streak[s] = 0;
                }
            } else {
                self.shrink_streak[s] = 0;
            }
        }
        if !changed.is_empty() {
            self.resync_changed(&changed);
            self.dispatch_pending(BatchKind::Resync);
        }
    }

    // --- Event routing ----------------------------------------------------

    fn route_object_event(&mut self, ev: &ObjectEvent) {
        match *ev {
            // A move of an unknown object is an appearance, matching the
            // monitors' own coalescing (state.rs).
            ObjectEvent::Move { id, to } | ObjectEvent::Insert { id, at: to } => {
                let desired = self.edge_mask[to.edge.index()];
                match self.objects.get_mut(&id) {
                    Some(rec) => {
                        let old = rec.mask;
                        for s in ShardBits(old & desired) {
                            self.pending[s].objects.push(ObjectEvent::Move { id, to });
                        }
                        for s in ShardBits(desired & !old) {
                            self.pending[s]
                                .objects
                                .push(ObjectEvent::Insert { id, at: to });
                        }
                        for s in ShardBits(old & !desired) {
                            self.pending[s].objects.push(ObjectEvent::Delete { id });
                        }
                        self.edge_obj.relocate(rec.pos.edge, to.edge, id);
                        rec.pos = to;
                        rec.mask = desired;
                    }
                    None => {
                        for s in ShardBits(desired) {
                            self.pending[s]
                                .objects
                                .push(ObjectEvent::Insert { id, at: to });
                        }
                        self.edge_obj.insert(to.edge, id);
                        self.objects.insert(
                            id,
                            ObjRec {
                                pos: to,
                                mask: desired,
                            },
                        );
                    }
                }
            }
            ObjectEvent::Delete { id } => {
                if let Some(rec) = self.objects.remove(&id) {
                    self.edge_obj.remove(rec.pos.edge, id);
                    for s in ShardBits(rec.mask) {
                        self.pending[s].objects.push(ObjectEvent::Delete { id });
                    }
                }
            }
        }
    }

    /// Drops `id` from the edge→query index bucket of `e`.
    fn unindex_query(&mut self, e: EdgeId, id: QueryId) {
        if let Some(bucket) = self.edge_queries.get_mut(&e) {
            if let Some(i) = bucket.iter().position(|&q| q == id) {
                bucket.swap_remove(i);
            }
            if bucket.is_empty() {
                self.edge_queries.remove(&e);
            }
        }
    }

    fn route_query_event(&mut self, ev: &QueryEvent) {
        match *ev {
            QueryEvent::Move { id, to } => {
                let Some(rec) = self.queries.get_mut(&id) else {
                    return; // move of an unknown query: dropped, as monitors do
                };
                let from_edge = rec.pos.edge;
                rec.pos = to;
                let new_shard = self.partition.shard_of_edge(to.edge);
                if new_shard == rec.shard {
                    self.pending[new_shard as usize]
                        .queries
                        .push(QueryEvent::Move { id, to });
                } else {
                    let k = rec.k;
                    self.pending[rec.shard as usize]
                        .queries
                        .push(QueryEvent::Remove { id });
                    self.pending[new_shard as usize]
                        .queries
                        .push(QueryEvent::Install { id, k, at: to });
                    rec.shard = new_shard;
                }
                if from_edge != to.edge {
                    self.unindex_query(from_edge, id);
                    self.edge_queries.entry(to.edge).or_default().push(id);
                }
            }
            QueryEvent::Install { id, k, at } => {
                let shard = self.partition.shard_of_edge(at.edge);
                let old = self.queries.insert(
                    id,
                    QueryRec {
                        k,
                        shard,
                        pos: at,
                        knn_dist: f64::INFINITY,
                        result: Vec::new(),
                    },
                );
                if let Some(old) = old {
                    if old.shard != shard {
                        self.pending[old.shard as usize]
                            .queries
                            .push(QueryEvent::Remove { id });
                    }
                    // Same shard: no Remove — the monitors coalesce a
                    // re-Install of a known query into an update (pinned by
                    // the duplicate-install differential test).
                    if old.pos.edge != at.edge {
                        self.unindex_query(old.pos.edge, id);
                        self.edge_queries.entry(at.edge).or_default().push(id);
                    }
                } else {
                    self.edge_queries.entry(at.edge).or_default().push(id);
                }
                self.pending[shard as usize]
                    .queries
                    .push(QueryEvent::Install { id, k, at });
            }
            QueryEvent::Remove { id } => {
                if let Some(rec) = self.queries.remove(&id) {
                    self.unindex_query(rec.pos.edge, id);
                    self.pending[rec.shard as usize]
                        .queries
                        .push(QueryEvent::Remove { id });
                }
            }
        }
    }
}

impl<L: ShardLink> ContinuousMonitor for ShardedEngine<L> {
    fn name(&self) -> &'static str {
        "SHARDED"
    }

    fn apply(&mut self, event: UpdateEvent) -> TickReport {
        match event {
            UpdateEvent::Object(ObjectEvent::Insert { id, at }) => {
                self.route_object_event(&ObjectEvent::Insert { id, at });
                // During bulk loading (no queries yet) the events stay
                // buffered and ship with the next install/tick. With live
                // queries the insert must be visible immediately, like in
                // the single monitors.
                if !self.queries.is_empty() {
                    self.resync_seen.clear();
                    self.dispatch_pending(BatchKind::Tick);
                    self.reconcile();
                }
                TickReport::default()
            }
            UpdateEvent::Query(QueryEvent::Install { id, k, at }) => {
                self.route_query_event(&QueryEvent::Install { id, k, at });
                self.resync_seen.clear();
                self.dispatch_pending(BatchKind::Tick);
                self.reconcile();
                TickReport::default()
            }
            UpdateEvent::Query(QueryEvent::Remove { id }) => {
                self.route_query_event(&QueryEvent::Remove { id });
                self.dispatch_pending(BatchKind::Tick);
                // The freed halo radius decays on subsequent ticks
                // (hysteresis), not here: eager shrinking would thrash on
                // remove+reinstall.
                TickReport::default()
            }
            other => {
                let mut batch = UpdateBatch::default();
                batch.push(other);
                self.tick(&batch)
            }
        }
    }

    fn tick(&mut self, batch: &UpdateBatch) -> TickReport {
        let start = Instant::now();
        self.changed.clear();
        self.workers_report = TickReport::default();
        self.tick_resync_touched = 0;
        self.tick_replica_evictions = 0;
        self.tick_rebalances = 0;
        self.tick_cells_migrated = 0;
        self.resync_seen.clear();

        // 0. Load-aware re-partitioning: if the previous ticks' load
        //    estimates show a persistent hot shard, migrate boundary cells
        //    before this tick's updates land (no-op unless
        //    `rebalance_trigger` enables it).
        self.maybe_rebalance();

        // 1. Edge updates: apply to the authoritative weights and stage
        //    them *once* — dispatch hands every shard the same Arc'd slice
        //    (every shard keeps a full weight table; its influence lists
        //    drop irrelevant ones cheaply).
        if !batch.edges.is_empty() {
            for u in &batch.edges {
                self.weights.set(u.edge, u.new_weight);
            }
            self.pending_edges.extend_from_slice(&batch.edges);
            self.diam_dirty = true;
            // 2. Halo membership is defined in weighted distances, so
            //    weight changes can move edges in or out of halos.
            let mut changed = FxHashSet::default();
            for s in 0..self.cfg.num_shards {
                if self.halo_r[s] > 0.0 {
                    self.recompute_halo(s, &mut changed);
                }
            }
            if !changed.is_empty() {
                self.resync_changed(&changed);
            }
        }

        // 3. Route the object and query streams onto the owning shards.
        for ev in &batch.objects {
            self.route_object_event(ev);
        }
        for ev in &batch.queries {
            self.route_query_event(ev);
        }

        // 4. Fan out, grow halos until every result is covered, then let
        //    oversized halos decay.
        self.dispatch_pending(BatchKind::Tick);
        let needed = self.reconcile();
        self.maybe_shrink_halos(&needed);

        // A query counts as changed only if its final result differs from
        // its pre-tick result — reconcile-round flaps that end where they
        // started do not count, matching a single monitor's report.
        let results_changed = self
            .changed
            .iter()
            .filter(|(id, before)| {
                self.queries
                    .get(id)
                    .is_some_and(|rec| rec.result != **before)
            })
            .count();

        // Fold this tick's per-shard load observations into the smoothed
        // estimates the imbalance detector reads next tick.
        for s in 0..self.cfg.num_shards {
            let observed = std::mem::take(&mut self.tick_load[s]) as f64;
            self.load[s] = self.load[s] * (1.0 - LOAD_SMOOTHING) + observed * LOAD_SMOOTHING;
        }
        // Same fold per cell: decay every known cell, add this tick's
        // observed charges, and drop cells whose estimate has decayed to
        // noise so the map tracks the live hot set, not history.
        if !self.cell_load.is_empty() || !self.tick_cell_load.is_empty() {
            for v in self.cell_load.values_mut() {
                *v *= 1.0 - LOAD_SMOOTHING;
            }
            for (e, steps) in self.tick_cell_load.drain() {
                *self.cell_load.entry(e).or_insert(0.0) += steps as f64 * LOAD_SMOOTHING;
            }
            self.cell_load.retain(|_, v| *v >= 0.5);
        }

        let mut counters = self.workers_report.counters;
        counters.resync_touched += self.tick_resync_touched;
        counters.replica_evictions += self.tick_replica_evictions;
        counters.rebalance_events += self.tick_rebalances;
        counters.cells_migrated += self.tick_cells_migrated;
        // Router-side allocation/step accounting: the halo scratch engine
        // and the edge→object arena (the workers' own counters already
        // arrived through their tick reports).
        counters.alloc_events +=
            self.scratch.take_alloc_events() + self.edge_obj.take_alloc_events();
        counters.expansion_steps += self.scratch.take_expansion_steps();
        TickReport {
            elapsed: start.elapsed(),
            results_changed,
            counters,
        }
    }

    fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.queries.get(&id).map(|r| r.result.as_slice())
    }

    fn knn_dist(&self, id: QueryId) -> Option<f64> {
        self.queries.get(&id).map(|r| r.knn_dist)
    }

    fn query_ids(&self) -> Vec<QueryId> {
        self.queries.keys().copied().collect()
    }

    fn memory(&self) -> MemoryUsage {
        let mut total = MemoryUsage::default();
        for (s, w) in self.workers.iter().enumerate() {
            if !self.dead[s] {
                w.send(Request::Memory);
            }
        }
        for (s, w) in self.workers.iter().enumerate() {
            if self.dead[s] {
                continue;
            }
            match w.recv() {
                Response::Memory(m) => {
                    total.edge_table += m.edge_table;
                    total.query_table += m.query_table;
                    total.expansion_trees += m.expansion_trees;
                    total.influence_lists += m.influence_lists;
                    total.auxiliary += m.auxiliary;
                }
                // A shard can die between ticks too; `memory` takes `&self`
                // so the burial waits for the next dispatch to observe the
                // Down — here the shard simply contributes nothing.
                Response::Down => {}
                Response::Tick(_) | Response::Snapshot(_) | Response::Restored(_) => {
                    unreachable!("unexpected response to a memory request")
                }
            }
        }
        // Router state: registries, masks, halo sets, edge→object index.
        total.auxiliary += self.edge_mask.capacity() * std::mem::size_of::<u64>()
            + self.objects.capacity()
                * (std::mem::size_of::<ObjectId>() + std::mem::size_of::<ObjRec>())
            + self.queries.capacity()
                * (std::mem::size_of::<QueryId>() + std::mem::size_of::<QueryRec>())
            + self
                .halo_edges
                .iter()
                .map(HaloRing::memory_bytes)
                .sum::<usize>()
            + self
                .edge_queries
                .values()
                .map(|b| b.capacity() * std::mem::size_of::<QueryId>())
                .sum::<usize>()
            + self.edge_obj.memory_bytes()
            + self.cell_load.capacity()
                * (std::mem::size_of::<EdgeId>() + std::mem::size_of::<f64>())
            + self.weights.memory_bytes();
        total
    }

    fn active_groups(&self) -> Option<usize> {
        let counts: Vec<usize> = self.active.iter().flatten().copied().collect();
        if counts.is_empty() {
            None
        } else {
            Some(counts.iter().sum())
        }
    }

    fn shard_load_ratio(&self) -> Option<f64> {
        let live = self.live_shards();
        if live < 2 {
            return None;
        }
        let total: f64 = self.load.iter().sum();
        if total <= 0.0 {
            return None;
        }
        // Dead shards carry zero load; the mean is over survivors.
        let mean = total / live as f64;
        let max = self.load.iter().fold(0.0f64, |a, &b| a.max(b));
        Some(max / mean)
    }
}

/// An upper bound on any shortest-path distance under `weights`: shortest
/// paths are simple, so no path exceeds the sum of all edge weights. The
/// tiny relative margin absorbs summation-order rounding.
fn diameter_bound(weights: &EdgeWeights) -> f64 {
    weights.total() * (1.0 + 1e-9)
}

/// Iterator over the set bits of a shard mask.
struct ShardBits(u64);

impl Iterator for ShardBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let s = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShardAlgo;
    use rnn_roadnet::generators::{grid_city, GridCityConfig};

    fn net() -> Arc<RoadNetwork> {
        Arc::new(grid_city(&GridCityConfig {
            nx: 6,
            ny: 6,
            seed: 9,
            ..Default::default()
        }))
    }

    fn engine(shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            net(),
            EngineConfig {
                num_shards: shards,
                algo: ShardAlgo::Ima,
                halo_slack: 0.25,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn basic_install_and_query() {
        let mut eng = engine(4);
        let n = eng.net.num_edges() as u32;
        for i in 0..20u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId((i * 3) % n), 0.4),
            ));
        }
        eng.apply(UpdateEvent::install_query(
            QueryId(0),
            5,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        let r = eng.result(QueryId(0)).unwrap();
        assert_eq!(r.len(), 5);
        for w in r.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert_eq!(eng.knn_dist(QueryId(0)).unwrap(), r[4].dist);
        assert_eq!(eng.query_ids(), vec![QueryId(0)]);
        eng.validate_replication().unwrap();
    }

    #[test]
    fn halo_grows_to_cover_results() {
        let mut eng = engine(4);
        let n = eng.net.num_edges() as u32;
        for i in 0..6u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId((i * 11) % n), 0.3),
            ));
        }
        eng.apply(UpdateEvent::install_query(
            QueryId(1),
            4,
            NetPoint::new(EdgeId(2), 0.1),
        ));
        let q = &eng.queries[&QueryId(1)];
        let s = q.shard as usize;
        assert!(
            eng.halo_radius(s) >= q.knn_dist || q.knn_dist == 0.0,
            "halo {} < kNN_dist {}",
            eng.halo_radius(s),
            q.knn_dist
        );
    }

    #[test]
    fn single_shard_needs_no_replicas() {
        let mut eng = engine(1);
        let n = eng.net.num_edges() as u32;
        for i in 0..10u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId((i * 7) % n), 0.6),
            ));
        }
        eng.apply(UpdateEvent::install_query(
            QueryId(0),
            3,
            NetPoint::new(EdgeId(1), 0.5),
        ));
        assert_eq!(eng.replica_count(), 0);
        assert_eq!(eng.result(QueryId(0)).unwrap().len(), 3);
    }

    #[test]
    fn empty_tick_reports_nothing() {
        let mut eng = engine(2);
        let n = eng.net.num_edges() as u32;
        for i in 0..10u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId((i * 7) % n), 0.6),
            ));
        }
        eng.apply(UpdateEvent::install_query(
            QueryId(0),
            3,
            NetPoint::new(EdgeId(1), 0.5),
        ));
        let before = eng.result(QueryId(0)).unwrap().to_vec();
        let rep = eng.tick(&UpdateBatch::default());
        assert_eq!(rep.results_changed, 0);
        assert_eq!(eng.result(QueryId(0)).unwrap(), before.as_slice());
    }

    #[test]
    fn query_migrates_across_shards() {
        let mut eng = engine(4);
        let n = eng.net.num_edges() as u32;
        for i in 0..30u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId((i * 5) % n), 0.5),
            ));
        }
        eng.apply(UpdateEvent::install_query(
            QueryId(0),
            3,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        let home = eng.queries[&QueryId(0)].shard;
        // Find an edge owned by a different shard and move the query there.
        let target = eng
            .net
            .edge_ids()
            .find(|&e| eng.partition.shard_of_edge(e) != home)
            .expect("4-way split has foreign edges");
        let mut batch = UpdateBatch::default();
        batch.queries.push(QueryEvent::Move {
            id: QueryId(0),
            to: NetPoint::new(target, 0.5),
        });
        eng.tick(&batch);
        assert_ne!(eng.queries[&QueryId(0)].shard, home);
        assert_eq!(eng.result(QueryId(0)).unwrap().len(), 3);
    }

    #[test]
    fn remove_query_forgets_it() {
        let mut eng = engine(2);
        let n = eng.net.num_edges() as u32;
        for i in 0..10u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId((i * 7) % n), 0.6),
            ));
        }
        eng.apply(UpdateEvent::install_query(
            QueryId(3),
            2,
            NetPoint::new(EdgeId(4), 0.5),
        ));
        assert!(eng.result(QueryId(3)).is_some());
        eng.apply(UpdateEvent::remove_query(QueryId(3)));
        assert!(eng.result(QueryId(3)).is_none());
        assert!(eng.query_ids().is_empty());
    }

    #[test]
    fn memory_aggregates_across_shards() {
        let mut eng = engine(4);
        let n = eng.net.num_edges() as u32;
        for i in 0..20u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId((i * 3) % n), 0.4),
            ));
        }
        eng.apply(UpdateEvent::install_query(
            QueryId(0),
            5,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        let m = eng.memory();
        assert!(m.total_bytes() > 0);
        assert!(m.auxiliary > 0);
    }

    // --- Shard-count validation (regression: 0 broke the partitioner,
    // ≥ 65 overflowed the 64-bit shard masks) --------------------------

    #[test]
    #[should_panic(expected = "num_shards must be in 1..=64")]
    fn rejects_zero_shards() {
        let _ = ShardedEngine::new(
            net(),
            EngineConfig {
                num_shards: 0,
                ..EngineConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "num_shards must be in 1..=64")]
    fn rejects_sixty_five_shards() {
        let _ = ShardedEngine::new(
            net(),
            EngineConfig {
                num_shards: 65,
                ..EngineConfig::default()
            },
        );
    }

    #[test]
    fn accepts_sixty_four_shards() {
        // The documented maximum must actually work: shard 63 uses the
        // mask's top bit without overflowing.
        let big = Arc::new(grid_city(&GridCityConfig {
            nx: 9,
            ny: 9,
            seed: 5,
            ..Default::default()
        }));
        let mut eng = ShardedEngine::new(
            big.clone(),
            EngineConfig {
                num_shards: 64,
                algo: ShardAlgo::Ima,
                ..EngineConfig::default()
            },
        );
        let n = big.num_edges() as u32;
        for i in 0..30u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId((i * 7) % n), 0.5),
            ));
        }
        eng.apply(UpdateEvent::install_query(
            QueryId(0),
            3,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        assert_eq!(eng.result(QueryId(0)).unwrap().len(), 3);
        eng.validate_replication().unwrap();
    }

    // --- Incremental resync and the replica lifecycle -----------------

    #[test]
    fn resync_touches_fewer_objects_than_total() {
        // Dense objects keep kNN_dist (and thus the halo) small, so a halo
        // grow event must resync only the residents of the few edges that
        // joined — strictly fewer than the object total. The query sits on
        // a shard-boundary edge so the grown halo is guaranteed to reach
        // across the border.
        let mut eng = engine(4);
        let n = eng.net.num_edges();
        for (i, e) in (0..n).enumerate() {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i as u32),
                NetPoint::new(EdgeId(e as u32), 0.5),
            ));
        }
        assert_eq!(eng.resync_touched(), 0, "no halo yet, no resync");
        let border = eng
            .net
            .edge_ids()
            .find(|&e| {
                let s = eng.partition.shard_of_edge(e);
                let rec = eng.net.edge(e);
                [rec.start, rec.end].into_iter().any(|node| {
                    eng.net
                        .adjacent(node)
                        .iter()
                        .any(|&(e2, _)| eng.partition.shard_of_edge(e2) != s)
                })
            })
            .expect("a 4-way split has boundary edges");
        eng.apply(UpdateEvent::install_query(
            QueryId(0),
            4,
            NetPoint::new(border, 0.5),
        ));
        let touched = eng.resync_touched();
        assert!(touched > 0, "halo growth must resync the edges that joined");
        assert!(
            touched < n as u64,
            "resync touched {touched} of {n} objects — not incremental"
        );
        eng.validate_replication().unwrap();

        // Same claim on a *tick* where a shard's halo grows: widening the
        // query (k 4 → 12) forces growth, and the tick's own counters must
        // show a resync strictly smaller than the object total.
        let radius_before = eng.halo_radius(eng.queries[&QueryId(0)].shard as usize);
        let mut batch = UpdateBatch::default();
        batch.queries.push(QueryEvent::Install {
            id: QueryId(0),
            k: 12,
            at: NetPoint::new(border, 0.5),
        });
        let rep = eng.tick(&batch);
        assert!(
            eng.halo_radius(eng.queries[&QueryId(0)].shard as usize) > radius_before,
            "k=12 must widen the halo"
        );
        assert!(rep.counters.resync_touched > 0);
        assert!(
            rep.counters.resync_touched < n as u64,
            "grow tick resynced {} of {n} objects — not incremental",
            rep.counters.resync_touched
        );
        eng.validate_replication().unwrap();
    }

    #[test]
    fn halo_shrinks_and_evicts_after_query_removal() {
        let mut eng = engine(4);
        let n = eng.net.num_edges() as u32;
        for i in 0..40u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId((i * 3) % n), 0.4),
            ));
        }
        eng.apply(UpdateEvent::install_query(
            QueryId(0),
            8,
            NetPoint::new(EdgeId(2), 0.5),
        ));
        assert!(eng.replica_count() > 0, "k=8 must replicate across borders");
        eng.apply(UpdateEvent::remove_query(QueryId(0)));
        // Demand is gone; the hysteresis lets the halo decay within
        // halo_shrink_ticks quiet ticks.
        for _ in 0..eng.cfg.halo_shrink_ticks + 1 {
            eng.tick(&UpdateBatch::default());
        }
        for s in 0..eng.num_shards() {
            assert_eq!(eng.halo_radius(s), 0.0, "shard {s} halo did not decay");
        }
        assert_eq!(eng.replica_count(), 0, "stale replicas were not evicted");
        assert!(eng.replica_evictions() > 0);
        eng.validate_replication().unwrap();
    }

    #[test]
    fn underfull_demand_is_capped_at_diameter_bound() {
        // k exceeds the object count: kNN_dist stays ∞, which used to pin
        // halo_r at ∞ permanently. It must now cap at the finite diameter
        // bound (and still see every object).
        let mut eng = engine(4);
        for i in 0..3u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId(i * 13), 0.5),
            ));
        }
        eng.apply(UpdateEvent::install_query(
            QueryId(0),
            10,
            NetPoint::new(EdgeId(0), 0.5),
        ));
        assert_eq!(eng.result(QueryId(0)).unwrap().len(), 3);
        assert_eq!(eng.knn_dist(QueryId(0)).unwrap(), f64::INFINITY);
        let s = eng.queries[&QueryId(0)].shard as usize;
        assert!(
            eng.halo_radius(s).is_finite(),
            "underfull demand must not produce an infinite radius"
        );
        assert!(eng.halo_radius(s) <= eng.diameter_bound() * (1.0 + eng.cfg.halo_slack) + 1e-9);
        eng.validate_replication().unwrap();
    }

    // --- Dynamic load-aware re-partitioning ----------------------------

    /// Installs objects on every edge and a tight query cluster on one
    /// shard, then churns the cluster every tick so all monitor work lands
    /// on that shard.
    fn hotspot_setup(eng: &mut ShardedEngine) -> Vec<(QueryId, EdgeId)> {
        let n = eng.net.num_edges();
        for (i, e) in (0..n).enumerate() {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i as u32),
                NetPoint::new(EdgeId(e as u32), 0.5),
            ));
        }
        let hot = eng.partition.shard_of_edge(EdgeId(0));
        let cluster: Vec<EdgeId> = eng
            .net
            .edge_ids()
            .filter(|&e| eng.partition.shard_of_edge(e) == hot)
            .take(6)
            .collect();
        let mut placed = Vec::new();
        for (q, &e) in cluster.iter().enumerate() {
            eng.apply(UpdateEvent::install_query(
                QueryId(q as u32),
                4,
                NetPoint::new(e, 0.25),
            ));
            placed.push((QueryId(q as u32), e));
        }
        placed
    }

    fn churn_tick(t: u32, placed: &[(QueryId, EdgeId)]) -> UpdateBatch {
        let mut batch = UpdateBatch::default();
        for &(q, e) in placed {
            let frac = if t % 2 == 0 { 0.2 } else { 0.8 };
            batch.queries.push(QueryEvent::Move {
                id: q,
                to: NetPoint::new(e, frac),
            });
        }
        batch
    }

    #[test]
    fn rebalancing_is_disabled_by_default() {
        let mut eng = engine(4);
        let placed = hotspot_setup(&mut eng);
        for t in 0..12 {
            eng.tick(&churn_tick(t, &placed));
        }
        assert_eq!(eng.rebalance_events(), 0);
        assert_eq!(eng.cells_migrated(), 0);
        // The skew is visible in the load estimates even though nothing
        // acts on it.
        assert!(eng.shard_load_ratio().unwrap() > 1.5);
    }

    #[test]
    fn hotspot_triggers_migration_and_improves_balance() {
        let mk = |trigger: f64| {
            ShardedEngine::new(
                net(),
                EngineConfig {
                    num_shards: 4,
                    algo: ShardAlgo::Ima,
                    rebalance_trigger: trigger,
                    rebalance_cooldown: 2,
                    ..EngineConfig::default()
                },
            )
        };
        let mut fixed = mk(0.0);
        let mut dynamic = mk(1.1);
        let placed_f = hotspot_setup(&mut fixed);
        let placed_d = hotspot_setup(&mut dynamic);
        assert_eq!(placed_f, placed_d, "identical partitions, identical setup");
        let mut reported_rebalances = 0u64;
        let mut reported_cells = 0u64;
        for t in 0..20 {
            let batch = churn_tick(t, &placed_f);
            fixed.tick(&batch);
            let rep = dynamic.tick(&batch);
            reported_rebalances += rep.counters.rebalance_events;
            reported_cells += rep.counters.cells_migrated;
            dynamic.validate_replication().unwrap();
            // Answer identity under migration: both engines agree (same
            // convention as the differential suite — 1e-9 relative
            // tolerance absorbs summation-order rounding when a migrated
            // query is recomputed by its new shard).
            let mut ids = fixed.query_ids();
            ids.sort();
            for q in ids {
                let (a, b) = (fixed.result(q).unwrap(), dynamic.result(q).unwrap());
                assert_eq!(a.len(), b.len(), "tick {t}, {q:?}");
                for (x, y) in a.iter().zip(b) {
                    assert!(
                        (x.dist - y.dist).abs() <= 1e-9 * x.dist.abs().max(1.0),
                        "tick {t}, {q:?}: {} vs {}",
                        x.dist,
                        y.dist
                    );
                }
            }
        }
        assert!(dynamic.rebalance_events() > 0, "hotspot must trigger");
        assert!(dynamic.cells_migrated() > 0);
        // The per-tick counter slices add up to the lifetime totals.
        assert_eq!(reported_rebalances, dynamic.rebalance_events());
        assert_eq!(reported_cells, dynamic.cells_migrated());
        let (rf, rd) = (
            fixed.shard_load_ratio().unwrap(),
            dynamic.shard_load_ratio().unwrap(),
        );
        assert!(
            rd < rf,
            "rebalancing must improve the load ratio: {rd} !< {rf}"
        );
        // The lifetime totals flowed into OpCounters as well.
        assert_eq!(fixed.cells_migrated(), 0);
    }

    #[test]
    fn migration_preserves_partition_and_query_routing() {
        let mut eng = ShardedEngine::new(
            net(),
            EngineConfig {
                num_shards: 2,
                algo: ShardAlgo::Gma,
                rebalance_trigger: 1.0,
                rebalance_cooldown: 1,
                ..EngineConfig::default()
            },
        );
        let placed = hotspot_setup(&mut eng);
        for t in 0..14 {
            eng.tick(&churn_tick(t, &placed));
            eng.validate_replication().unwrap();
            eng.partition.validate(&eng.net).unwrap();
        }
        assert!(eng.cells_migrated() > 0);
        // Every clustered query still answers with k results from its
        // (possibly new) owner shard.
        for &(q, _) in &placed {
            assert_eq!(eng.result(q).unwrap().len(), 4);
        }
    }

    #[test]
    fn cell_charges_flow_from_workers_into_cell_load() {
        // Attribution is active whenever rebalancing is enabled; the huge
        // trigger keeps the planner itself from ever firing.
        let mut eng = ShardedEngine::new(
            net(),
            EngineConfig {
                num_shards: 2,
                algo: ShardAlgo::Ima,
                rebalance_trigger: 1e9,
                ..EngineConfig::default()
            },
        );
        let n = eng.net.num_edges() as u32;
        for i in 0..30u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId((i * 5) % n), 0.4),
            ));
        }
        eng.apply(UpdateEvent::install_query(
            QueryId(0),
            4,
            NetPoint::new(EdgeId(3), 0.5),
        ));
        // Churn the query so its shard re-expands every tick; the worker
        // attributes those expansions to the query's cell and the engine
        // folds them into the smoothed per-cell estimate.
        for t in 0..4u32 {
            let mut batch = UpdateBatch::default();
            batch.queries.push(QueryEvent::Move {
                id: QueryId(0),
                to: NetPoint::new(EdgeId(3), if t % 2 == 0 { 0.2 } else { 0.8 }),
            });
            eng.tick(&batch);
        }
        assert!(
            eng.cell_load(EdgeId(3)) > 0.0,
            "expansions rooted on edge 3 must charge that cell"
        );
    }

    #[test]
    fn planner_ranks_cells_by_true_expansion_cost() {
        // Synthetic two-cell hotspot on the hot shard's border: cell B is
        // entity-heavy (many resident objects, the old ranking signal) but
        // hosts no expansions; cell A is entity-light but carries all the
        // observed expansion cost. The planner must hand A over first.
        let mut eng = engine(2);
        let cells = eng.partition.boundary_cells_between(&eng.net, 0, 1);
        assert!(cells.len() >= 2, "2-way split has a multi-cell border");
        let (a, b) = (cells[0], cells[1]);
        for i in 0..40u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(b, 0.3 + f64::from(i % 4) * 0.1),
            ));
        }
        eng.load = vec![10_000.0, 1.0];
        eng.cell_load.insert(a, 5_000.0);
        let (cold, chosen) = eng.plan_migration(0).expect("imbalance has a plan");
        assert_eq!(cold, 1);
        assert_eq!(
            chosen[0], a,
            "the expansion-hot cell must outrank the entity-heavy one"
        );
    }

    #[test]
    fn stable_ticks_do_no_resync() {
        let mut eng = engine(4);
        let n = eng.net.num_edges() as u32;
        for i in 0..30u32 {
            eng.apply(UpdateEvent::insert_object(
                ObjectId(i),
                NetPoint::new(EdgeId((i * 3) % n), 0.4),
            ));
        }
        eng.apply(UpdateEvent::install_query(
            QueryId(0),
            4,
            NetPoint::new(EdgeId(1), 0.5),
        ));
        // Let any post-install shrink settle first.
        for _ in 0..eng.cfg.halo_shrink_ticks + 1 {
            eng.tick(&UpdateBatch::default());
        }
        let before = eng.resync_touched();
        let rep = eng.tick(&UpdateBatch::default());
        assert_eq!(
            eng.resync_touched(),
            before,
            "halo-stable tick must not resync anything"
        );
        assert_eq!(rep.counters.resync_touched, 0);
    }
}
