//! The sharded engine: routing, halo replication, and reconciliation.
//!
//! # Design
//!
//! The network is split into `S` connected regions
//! ([`rnn_roadnet::NetworkPartition`]). Each region is owned by a shard: a
//! worker thread running a full [`ContinuousMonitor`] over the *shared*
//! topology (an `Arc<RoadNetwork>`) but tracking only the objects and
//! queries routed to it. Queries live with the shard owning their edge;
//! objects live with their owner shard **plus** every shard whose *halo*
//! they fall into.
//!
//! ## Halo correctness argument
//!
//! A query `q` in shard `s` with result radius `d = kNN_dist(q)` only
//! inspects network points within distance `d` of `q`. Any such point `p`
//! outside region `s` is reached by a path that exits the region through a
//! boundary node `b`, so `dist(b, p) ≤ d`. Hence if shard `s` additionally
//! sees every object within distance `r_s ≥ max_q kNN_dist(q)` of its
//! boundary (the *halo*), the monitor's candidate set contains every true
//! neighbor of every owned query, and its answers equal a single global
//! monitor's.
//!
//! `kNN_dist` is only known *after* computing results, so the engine closes
//! the loop iteratively: tick the shards, read back each query's
//! `kNN_dist`, and where it exceeds the shard's current halo radius, grow
//! the halo (a bounded multi-source Dijkstra from the shard's boundary
//! nodes under the current weights), ship the newly visible objects in, and
//! tick again. Adding objects can only *shrink* `kNN_dist`, so the needed
//! radius is non-increasing and the loop terminates — in steady state it
//! converges immediately and the extra rounds are rare. Halo membership is
//! also refreshed whenever edge weights change, since it is defined in
//! terms of weighted distances.

use std::sync::Arc;
use std::time::Instant;

use rnn_core::{
    ContinuousMonitor, MemoryUsage, Neighbor, ObjectEvent, QueryEvent, TickReport, UpdateBatch,
};
use rnn_roadnet::{
    DijkstraEngine, EdgeWeights, FxHashMap, FxHashSet, NetPoint, NetworkPartition, ObjectId,
    QueryId, RoadNetwork,
};

use crate::config::EngineConfig;
use crate::worker::{Request, Response, ShardWorker};

struct ObjRec {
    pos: NetPoint,
    /// Bit `s` set = shard `s` currently holds this object (owner or
    /// replica).
    mask: u64,
}

struct QueryRec {
    k: usize,
    shard: u32,
    knn_dist: f64,
    result: Vec<Neighbor>,
}

/// A sharded, multi-threaded continuous-monitoring engine that is
/// answer-identical to a single monitor over the whole network.
///
/// Implements [`ContinuousMonitor`] itself, so it drops into every place a
/// single-threaded monitor fits (scenario drivers, the bench harness, the
/// differential tests).
pub struct ShardedEngine {
    cfg: EngineConfig,
    partition: NetworkPartition,
    net: Arc<RoadNetwork>,
    /// The engine's authoritative copy of the fluctuating weights (needed
    /// for halo distance computations).
    weights: EdgeWeights,
    scratch: DijkstraEngine,
    workers: Vec<ShardWorker>,
    /// Current halo radius per shard (grows on demand, never shrinks).
    halo_r: Vec<f64>,
    /// Foreign edges inside each shard's halo.
    halo_edges: Vec<FxHashSet<rnn_roadnet::EdgeId>>,
    /// Per-edge visibility mask: bit `s` = edge is owned by or in the halo
    /// of shard `s`.
    edge_mask: Vec<u64>,
    objects: FxHashMap<ObjectId, ObjRec>,
    queries: FxHashMap<QueryId, QueryRec>,
    /// Events routed but not yet shipped, one batch per shard.
    pending: Vec<UpdateBatch>,
    /// GMA active-node counts per shard, from the latest outcomes.
    active: Vec<Option<usize>>,
    /// Pre-tick results of queries touched during the current tick, so
    /// reconcile-round flaps that end where they started do not count as
    /// changes.
    changed: FxHashMap<QueryId, Vec<Neighbor>>,
    /// Monitor-side aggregate for the current tick: critical-path elapsed
    /// (max across a round's parallel workers, summed across rounds) and
    /// summed op counters.
    workers_report: TickReport,
}

impl ShardedEngine {
    /// Partitions `net` and spawns one monitor worker per shard.
    pub fn new(net: Arc<RoadNetwork>, cfg: EngineConfig) -> Self {
        let partition = NetworkPartition::build(&net, cfg.num_shards);
        let workers = (0..cfg.num_shards)
            .map(|s| ShardWorker::spawn(s, cfg.algo.make(net.clone())))
            .collect();
        let edge_mask = net
            .edge_ids()
            .map(|e| 1u64 << partition.shard_of_edge(e))
            .collect::<Vec<_>>();
        let weights = EdgeWeights::from_base(&net);
        let scratch = DijkstraEngine::new(net.num_nodes());
        Self {
            partition,
            weights,
            scratch,
            workers,
            halo_r: vec![0.0; cfg.num_shards],
            halo_edges: vec![FxHashSet::default(); cfg.num_shards],
            edge_mask,
            objects: FxHashMap::default(),
            queries: FxHashMap::default(),
            pending: vec![UpdateBatch::default(); cfg.num_shards],
            active: vec![None; cfg.num_shards],
            changed: FxHashMap::default(),
            workers_report: TickReport::default(),
            net,
            cfg,
        }
    }

    /// The partition the engine runs on.
    pub fn partition(&self) -> &NetworkPartition {
        &self.partition
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.cfg.num_shards
    }

    /// Current halo radius of shard `s`.
    pub fn halo_radius(&self, s: usize) -> f64 {
        self.halo_r[s]
    }

    /// Total number of object replicas currently shipped to non-owner
    /// shards (a measure of the replication overhead).
    pub fn replica_count(&self) -> usize {
        self.objects
            .values()
            .map(|o| o.mask.count_ones() as usize - 1)
            .sum()
    }

    /// Monitor-side aggregate of the last tick: critical-path elapsed time
    /// (max across each dispatch round's parallel workers, summed across
    /// rounds) and summed op counters. Excludes the router's own work —
    /// compare with the engine's own `TickReport::elapsed` to see
    /// routing/hand-off overhead.
    pub fn worker_report(&self) -> TickReport {
        self.workers_report
    }

    // --- Halo maintenance -------------------------------------------------

    /// Recomputes shard `s`'s halo edge set under the current weights and
    /// radius. Returns `true` if membership changed.
    fn recompute_halo(&mut self, s: usize) -> bool {
        let r = self.halo_r[s];
        let mut fresh = FxHashSet::default();
        let boundary = &self.partition.view(s).boundary_nodes;
        if r > 0.0 && !boundary.is_empty() {
            self.scratch.begin();
            for &b in boundary {
                self.scratch.seed(b, 0.0, None);
            }
            while let Some((n, d)) = self.scratch.pop_settle() {
                if d > r {
                    break;
                }
                for &(e, m) in self.net.adjacent(n) {
                    if self.partition.shard_of_edge(e) != s as u32 {
                        fresh.insert(e);
                    }
                    let nd = d + self.weights.get(e);
                    if nd <= r {
                        self.scratch.relax(m, n, nd);
                    }
                }
            }
        }
        if fresh == self.halo_edges[s] {
            return false;
        }
        let bit = 1u64 << s;
        for &e in &self.halo_edges[s] {
            self.edge_mask[e.index()] &= !bit;
        }
        for &e in &fresh {
            self.edge_mask[e.index()] |= bit;
        }
        self.halo_edges[s] = fresh;
        true
    }

    /// Re-derives every object's desired shard set from the (possibly just
    /// rebuilt) edge masks and queues insert/delete events for the
    /// differences.
    fn resync_objects(&mut self) {
        for (&id, rec) in &mut self.objects {
            let desired = self.edge_mask[rec.pos.edge.index()];
            if desired == rec.mask {
                continue;
            }
            let added = desired & !rec.mask;
            let removed = rec.mask & !desired;
            for s in ShardBits(added) {
                self.pending[s]
                    .objects
                    .push(ObjectEvent::Insert { id, at: rec.pos });
            }
            for s in ShardBits(removed) {
                self.pending[s].objects.push(ObjectEvent::Delete { id });
            }
            rec.mask = desired;
        }
    }

    // --- Dispatch ---------------------------------------------------------

    /// Ships every non-empty pending batch to its shard, waits for all
    /// outcomes, and folds them into the engine's caches. Returns `true` if
    /// anything was sent.
    fn dispatch_pending(&mut self) -> bool {
        let mut sent = vec![false; self.cfg.num_shards];
        let mut any = false;
        for (s, flag) in sent.iter_mut().enumerate() {
            if self.pending[s].is_empty() {
                continue;
            }
            let batch = std::mem::take(&mut self.pending[s]);
            self.workers[s].send(Request::Tick(batch));
            *flag = true;
            any = true;
        }
        // Workers in one round run in parallel, so their reports fold with
        // max-elapsed semantics; successive rounds are sequential and add.
        let mut round = TickReport::default();
        for (s, &was_sent) in sent.iter().enumerate() {
            if !was_sent {
                continue;
            }
            match self.workers[s].recv() {
                Response::Tick(outcome) => {
                    round.absorb_parallel(&outcome.report);
                    self.active[s] = outcome.active_groups;
                    for snap in outcome.snapshots {
                        let Some(rec) = self.queries.get_mut(&snap.id) else {
                            continue;
                        };
                        if rec.shard != s as u32 {
                            continue; // stale snapshot of a query mid-migration
                        }
                        rec.knn_dist = snap.knn_dist;
                        if rec.result != snap.result {
                            self.changed
                                .entry(snap.id)
                                .or_insert_with(|| rec.result.clone());
                            rec.result = snap.result;
                        }
                    }
                }
                Response::Memory(_) => unreachable!("memory response to a tick request"),
            }
        }
        self.workers_report.elapsed += round.elapsed;
        self.workers_report.counters.merge(&round.counters);
        any
    }

    /// Grows halos until every query's `kNN_dist` is covered by its
    /// shard's halo radius, shipping newly visible objects as needed. See
    /// the module docs for why this terminates.
    fn reconcile(&mut self) {
        loop {
            let mut needed = vec![0.0f64; self.cfg.num_shards];
            for rec in self.queries.values() {
                let s = rec.shard as usize;
                needed[s] = needed[s].max(rec.knn_dist);
            }
            let mut halos_dirty = false;
            for (s, &need) in needed.iter().enumerate() {
                if need > self.halo_r[s] {
                    self.halo_r[s] = if need.is_finite() {
                        need * (1.0 + self.cfg.halo_slack.max(0.0))
                    } else {
                        f64::INFINITY
                    };
                    halos_dirty |= self.recompute_halo(s);
                }
            }
            if halos_dirty {
                self.resync_objects();
            }
            if !self.dispatch_pending() {
                return;
            }
        }
    }

    // --- Event routing ----------------------------------------------------

    fn route_object_event(&mut self, ev: &ObjectEvent) {
        match *ev {
            // A move of an unknown object is an appearance, matching the
            // monitors' own coalescing (state.rs).
            ObjectEvent::Move { id, to } | ObjectEvent::Insert { id, at: to } => {
                let desired = self.edge_mask[to.edge.index()];
                match self.objects.get_mut(&id) {
                    Some(rec) => {
                        let old = rec.mask;
                        for s in ShardBits(old & desired) {
                            self.pending[s].objects.push(ObjectEvent::Move { id, to });
                        }
                        for s in ShardBits(desired & !old) {
                            self.pending[s]
                                .objects
                                .push(ObjectEvent::Insert { id, at: to });
                        }
                        for s in ShardBits(old & !desired) {
                            self.pending[s].objects.push(ObjectEvent::Delete { id });
                        }
                        rec.pos = to;
                        rec.mask = desired;
                    }
                    None => {
                        for s in ShardBits(desired) {
                            self.pending[s]
                                .objects
                                .push(ObjectEvent::Insert { id, at: to });
                        }
                        self.objects.insert(
                            id,
                            ObjRec {
                                pos: to,
                                mask: desired,
                            },
                        );
                    }
                }
            }
            ObjectEvent::Delete { id } => {
                if let Some(rec) = self.objects.remove(&id) {
                    for s in ShardBits(rec.mask) {
                        self.pending[s].objects.push(ObjectEvent::Delete { id });
                    }
                }
            }
        }
    }

    fn route_query_event(&mut self, ev: &QueryEvent) {
        match *ev {
            QueryEvent::Move { id, to } => {
                let Some(rec) = self.queries.get_mut(&id) else {
                    return; // move of an unknown query: dropped, as monitors do
                };
                let new_shard = self.partition.shard_of_edge(to.edge);
                if new_shard == rec.shard {
                    self.pending[new_shard as usize]
                        .queries
                        .push(QueryEvent::Move { id, to });
                } else {
                    let k = rec.k;
                    self.pending[rec.shard as usize]
                        .queries
                        .push(QueryEvent::Remove { id });
                    self.pending[new_shard as usize]
                        .queries
                        .push(QueryEvent::Install { id, k, at: to });
                    rec.shard = new_shard;
                }
            }
            QueryEvent::Install { id, k, at } => {
                let shard = self.partition.shard_of_edge(at.edge);
                let old = self.queries.insert(
                    id,
                    QueryRec {
                        k,
                        shard,
                        knn_dist: f64::INFINITY,
                        result: Vec::new(),
                    },
                );
                if let Some(old) = old {
                    if old.shard != shard {
                        self.pending[old.shard as usize]
                            .queries
                            .push(QueryEvent::Remove { id });
                    }
                }
                self.pending[shard as usize]
                    .queries
                    .push(QueryEvent::Install { id, k, at });
            }
            QueryEvent::Remove { id } => {
                if let Some(rec) = self.queries.remove(&id) {
                    self.pending[rec.shard as usize]
                        .queries
                        .push(QueryEvent::Remove { id });
                }
            }
        }
    }
}

impl ContinuousMonitor for ShardedEngine {
    fn name(&self) -> &'static str {
        "SHARDED"
    }

    fn insert_object(&mut self, id: ObjectId, at: NetPoint) {
        self.route_object_event(&ObjectEvent::Insert { id, at });
        // During bulk loading (no queries yet) the events stay buffered and
        // ship with the next install/tick. With live queries the insert
        // must be visible immediately, like in the single monitors.
        if !self.queries.is_empty() {
            self.dispatch_pending();
            self.reconcile();
        }
    }

    fn install_query(&mut self, id: QueryId, k: usize, at: NetPoint) {
        self.route_query_event(&QueryEvent::Install { id, k, at });
        self.dispatch_pending();
        self.reconcile();
    }

    fn remove_query(&mut self, id: QueryId) {
        self.route_query_event(&QueryEvent::Remove { id });
        self.dispatch_pending();
    }

    fn tick(&mut self, batch: &UpdateBatch) -> TickReport {
        let start = Instant::now();
        self.changed.clear();
        self.workers_report = TickReport::default();

        // 1. Edge updates: apply to the authoritative weights and broadcast
        //    (every shard keeps a full weight table; its influence lists
        //    drop irrelevant ones cheaply).
        for u in &batch.edges {
            self.weights.set(u.edge, u.new_weight);
            for s in 0..self.cfg.num_shards {
                self.pending[s].edges.push(*u);
            }
        }
        // 2. Halo membership is defined in weighted distances, so weight
        //    changes can move edges in or out of halos.
        if !batch.edges.is_empty() {
            let mut halos_dirty = false;
            for s in 0..self.cfg.num_shards {
                if self.halo_r[s] > 0.0 {
                    halos_dirty |= self.recompute_halo(s);
                }
            }
            if halos_dirty {
                self.resync_objects();
            }
        }

        // 3. Route the object and query streams onto the owning shards.
        for ev in &batch.objects {
            self.route_object_event(ev);
        }
        for ev in &batch.queries {
            self.route_query_event(ev);
        }

        // 4. Fan out, then grow halos until every result is covered.
        self.dispatch_pending();
        self.reconcile();

        // A query counts as changed only if its final result differs from
        // its pre-tick result — reconcile-round flaps that end where they
        // started do not count, matching a single monitor's report.
        let results_changed = self
            .changed
            .iter()
            .filter(|(id, before)| {
                self.queries
                    .get(id)
                    .is_some_and(|rec| rec.result != **before)
            })
            .count();

        TickReport {
            elapsed: start.elapsed(),
            results_changed,
            counters: self.workers_report.counters,
        }
    }

    fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.queries.get(&id).map(|r| r.result.as_slice())
    }

    fn knn_dist(&self, id: QueryId) -> Option<f64> {
        self.queries.get(&id).map(|r| r.knn_dist)
    }

    fn query_ids(&self) -> Vec<QueryId> {
        self.queries.keys().copied().collect()
    }

    fn memory(&self) -> MemoryUsage {
        let mut total = MemoryUsage::default();
        for w in &self.workers {
            w.send(Request::Memory);
        }
        for w in &self.workers {
            match w.recv() {
                Response::Memory(m) => {
                    total.edge_table += m.edge_table;
                    total.query_table += m.query_table;
                    total.expansion_trees += m.expansion_trees;
                    total.influence_lists += m.influence_lists;
                    total.auxiliary += m.auxiliary;
                }
                Response::Tick(_) => unreachable!("tick response to a memory request"),
            }
        }
        // Router state: registries, masks, halo sets.
        total.auxiliary += self.edge_mask.capacity() * std::mem::size_of::<u64>()
            + self.objects.capacity()
                * (std::mem::size_of::<ObjectId>() + std::mem::size_of::<ObjRec>())
            + self.queries.capacity()
                * (std::mem::size_of::<QueryId>() + std::mem::size_of::<QueryRec>())
            + self
                .halo_edges
                .iter()
                .map(|h| h.capacity() * std::mem::size_of::<rnn_roadnet::EdgeId>())
                .sum::<usize>()
            + self.weights.memory_bytes();
        total
    }

    fn active_groups(&self) -> Option<usize> {
        let counts: Vec<usize> = self.active.iter().flatten().copied().collect();
        if counts.is_empty() {
            None
        } else {
            Some(counts.iter().sum())
        }
    }
}

/// Iterator over the set bits of a shard mask.
struct ShardBits(u64);

impl Iterator for ShardBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let s = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShardAlgo;
    use rnn_roadnet::generators::{grid_city, GridCityConfig};
    use rnn_roadnet::EdgeId;

    fn net() -> Arc<RoadNetwork> {
        Arc::new(grid_city(&GridCityConfig {
            nx: 6,
            ny: 6,
            seed: 9,
            ..Default::default()
        }))
    }

    fn engine(shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            net(),
            EngineConfig {
                num_shards: shards,
                algo: ShardAlgo::Ima,
                halo_slack: 0.25,
            },
        )
    }

    #[test]
    fn basic_install_and_query() {
        let mut eng = engine(4);
        let n = eng.net.num_edges() as u32;
        for i in 0..20u32 {
            eng.insert_object(ObjectId(i), NetPoint::new(EdgeId((i * 3) % n), 0.4));
        }
        eng.install_query(QueryId(0), 5, NetPoint::new(EdgeId(0), 0.5));
        let r = eng.result(QueryId(0)).unwrap();
        assert_eq!(r.len(), 5);
        for w in r.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert_eq!(eng.knn_dist(QueryId(0)).unwrap(), r[4].dist);
        assert_eq!(eng.query_ids(), vec![QueryId(0)]);
    }

    #[test]
    fn halo_grows_to_cover_results() {
        let mut eng = engine(4);
        let n = eng.net.num_edges() as u32;
        for i in 0..6u32 {
            eng.insert_object(ObjectId(i), NetPoint::new(EdgeId((i * 11) % n), 0.3));
        }
        eng.install_query(QueryId(1), 4, NetPoint::new(EdgeId(2), 0.1));
        let q = &eng.queries[&QueryId(1)];
        let s = q.shard as usize;
        assert!(
            eng.halo_radius(s) >= q.knn_dist || q.knn_dist == 0.0,
            "halo {} < kNN_dist {}",
            eng.halo_radius(s),
            q.knn_dist
        );
    }

    #[test]
    fn single_shard_needs_no_replicas() {
        let mut eng = engine(1);
        let n = eng.net.num_edges() as u32;
        for i in 0..10u32 {
            eng.insert_object(ObjectId(i), NetPoint::new(EdgeId((i * 7) % n), 0.6));
        }
        eng.install_query(QueryId(0), 3, NetPoint::new(EdgeId(1), 0.5));
        assert_eq!(eng.replica_count(), 0);
        assert_eq!(eng.result(QueryId(0)).unwrap().len(), 3);
    }

    #[test]
    fn empty_tick_reports_nothing() {
        let mut eng = engine(2);
        let n = eng.net.num_edges() as u32;
        for i in 0..10u32 {
            eng.insert_object(ObjectId(i), NetPoint::new(EdgeId((i * 7) % n), 0.6));
        }
        eng.install_query(QueryId(0), 3, NetPoint::new(EdgeId(1), 0.5));
        let before = eng.result(QueryId(0)).unwrap().to_vec();
        let rep = eng.tick(&UpdateBatch::default());
        assert_eq!(rep.results_changed, 0);
        assert_eq!(eng.result(QueryId(0)).unwrap(), before.as_slice());
    }

    #[test]
    fn query_migrates_across_shards() {
        let mut eng = engine(4);
        let n = eng.net.num_edges() as u32;
        for i in 0..30u32 {
            eng.insert_object(ObjectId(i), NetPoint::new(EdgeId((i * 5) % n), 0.5));
        }
        eng.install_query(QueryId(0), 3, NetPoint::new(EdgeId(0), 0.5));
        let home = eng.queries[&QueryId(0)].shard;
        // Find an edge owned by a different shard and move the query there.
        let target = eng
            .net
            .edge_ids()
            .find(|&e| eng.partition.shard_of_edge(e) != home)
            .expect("4-way split has foreign edges");
        let mut batch = UpdateBatch::default();
        batch.queries.push(QueryEvent::Move {
            id: QueryId(0),
            to: NetPoint::new(target, 0.5),
        });
        eng.tick(&batch);
        assert_ne!(eng.queries[&QueryId(0)].shard, home);
        assert_eq!(eng.result(QueryId(0)).unwrap().len(), 3);
    }

    #[test]
    fn remove_query_forgets_it() {
        let mut eng = engine(2);
        let n = eng.net.num_edges() as u32;
        for i in 0..10u32 {
            eng.insert_object(ObjectId(i), NetPoint::new(EdgeId((i * 7) % n), 0.6));
        }
        eng.install_query(QueryId(3), 2, NetPoint::new(EdgeId(4), 0.5));
        assert!(eng.result(QueryId(3)).is_some());
        eng.remove_query(QueryId(3));
        assert!(eng.result(QueryId(3)).is_none());
        assert!(eng.query_ids().is_empty());
    }

    #[test]
    fn memory_aggregates_across_shards() {
        let mut eng = engine(4);
        let n = eng.net.num_edges() as u32;
        for i in 0..20u32 {
            eng.insert_object(ObjectId(i), NetPoint::new(EdgeId((i * 3) % n), 0.4));
        }
        eng.install_query(QueryId(0), 5, NetPoint::new(EdgeId(0), 0.5));
        let m = eng.memory();
        assert!(m.total_bytes() > 0);
        assert!(m.auxiliary > 0);
    }
}
