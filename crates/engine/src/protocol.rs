//! The engine↔shard protocol, factored out of the worker threads so that
//! any kind of shard — an in-process thread ([`crate::worker::ShardWorker`])
//! or a remote process behind an RPC link (`rnn-cluster`) — can speak it.
//!
//! The protocol is a strict one-outstanding request/response exchange per
//! shard: every [`Request::Tick`] and [`Request::Memory`] is answered by
//! exactly one [`Response`], and the engine drains all outstanding
//! responses before issuing new requests. Hand-off is **delta encoded**
//! ([`DeltaBatch`]): per-shard object and query event slices are moved
//! (never cloned) out of the router's pending buffers, the tick's
//! edge-weight updates travel as one shared `Arc` arena, and shards reply
//! with [`QuerySnapshot`] deltas — queries whose state changed since the
//! shard's previous response.
//!
//! [`ShardTickState`] is the shard-side half of that delta discipline
//! (the shipped-snapshot cache and scratch buffers), shared verbatim by
//! the worker thread loop and the cluster's `ShardService` so both kinds
//! of shard produce bit-identical responses.

use std::sync::Arc;

use rnn_core::{
    ContinuousMonitor, EdgeWeightUpdate, MemoryUsage, Neighbor, ObjectEvent, QueryEvent,
    TickReport, UpdateBatch,
};
use rnn_roadnet::wire::{decode_seq, encode_seq, put_f64, put_u32, put_u64, put_u8};
use rnn_roadnet::{EdgeId, FxHashMap, FxHashSet, QueryId, WireCodec, WireError, WireReader};

/// Why a [`DeltaBatch`] was dispatched. The in-process worker ignores the
/// kind (the shard-side processing is identical); the cluster transport
/// uses it to give each phase of the engine's protocol — regular ticks,
/// halo-resync rounds, migration hand-off — its own typed wire frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchKind {
    /// A regular tick's routed events.
    Tick,
    /// A reconcile round: halo resync inserts/evictions after radii moved.
    Resync,
    /// A rebalance migration hand-off: entity removals on the source
    /// shard, installs on the destination shard.
    Migration,
}

/// The events of one dispatch destined for a single shard: its own object
/// and query slices (moved from the router, append-only while pending)
/// plus a reference-counted view of the tick's shared edge-update arena.
#[derive(Clone, Debug)]
pub struct DeltaBatch {
    /// Object events routed to this shard (owned, moved — never cloned).
    pub objects: Vec<ObjectEvent>,
    /// Query events routed to this shard (owned, moved — never cloned).
    pub queries: Vec<QueryEvent>,
    /// The tick's edge-weight updates, shared by every shard through one
    /// arena allocation (empty `Arc` on reconcile rounds).
    pub shared_edges: Arc<Vec<EdgeWeightUpdate>>,
    /// Which engine phase dispatched this batch (tick / resync /
    /// migration). Does not change shard-side processing; selects the wire
    /// frame tag on RPC links.
    pub kind: BatchKind,
}

/// What the engine asks a shard to do.
pub enum Request {
    /// Process one (sub-)batch and report back.
    Tick(DeltaBatch),
    /// Report the monitor's resident memory.
    Memory,
    /// Capture the monitor's answer-relevant state (the durability
    /// plane's snapshot; see [`rnn_core::MonitorState`]).
    Snapshot,
    /// Install a previously captured state into a fresh monitor (crash
    /// recovery before WAL-suffix replay).
    Restore(Box<rnn_core::MonitorState>),
    /// Exit the worker loop.
    Shutdown,
}

/// A shard's answer.
pub enum Response {
    /// Outcome of a [`Request::Tick`].
    Tick(TickOutcome),
    /// Answer to [`Request::Memory`].
    Memory(MemoryUsage),
    /// Answer to [`Request::Snapshot`] (`None` when the monitor has no
    /// snapshot support).
    Snapshot(Option<Box<rnn_core::MonitorState>>),
    /// Answer to [`Request::Restore`]: whether the state installed and
    /// validated cleanly.
    Restored(bool),
    /// The link to this shard is gone for good: the transport died and
    /// recovery (respawn + snapshot + replay) stayed exhausted past its
    /// retry budget. In-process workers never produce this; RPC links do.
    /// The engine either panics (default — a lost shard is fatal) or,
    /// with takeover enabled, rebalances the dead shard's cells away.
    Down,
}

/// The state of one query after a shard processed a batch.
#[derive(Clone, Debug, PartialEq)]
pub struct QuerySnapshot {
    /// The query.
    pub id: QueryId,
    /// Its `kNN_dist` (∞ while underfull).
    pub knn_dist: f64,
    /// Its current result, sorted by `(dist, id)`.
    pub result: Vec<Neighbor>,
}

/// Everything the engine needs back from one shard tick.
#[derive(Clone, Debug, PartialEq)]
pub struct TickOutcome {
    /// The monitor's own report (op counters, worker wall-clock).
    pub report: TickReport,
    /// Queries whose state changed since the shard's last response (plus
    /// every query installed by this batch). Absence means "unchanged" —
    /// the engine keeps its cached result.
    pub snapshots: Vec<QuerySnapshot>,
    /// The monitor's grouping-unit count (GMA active nodes), if any.
    pub active_groups: Option<usize>,
    /// Expansion work attributed to partition cells: `(cell edge of the
    /// expansion root, Dijkstra steps)` per expansion the monitor ran this
    /// batch. Feeds the engine's per-cell load estimates (the rebalance
    /// planner's true-cost ranking).
    pub cell_charges: Vec<(EdgeId, u64)>,
}

/// A channel to one shard, whatever its locality. The engine only ever
/// needs the strict request/response pair; implementations are the
/// in-process [`crate::worker::ShardWorker`] (mpsc channels to a thread)
/// and the cluster's `RemoteShard` (framed RPC with retry/timeout).
pub trait ShardLink: Send {
    /// Sends a request. Must not block on the shard's processing.
    fn send(&self, req: Request);
    /// Blocks for the next response to an outstanding request.
    fn recv(&self) -> Response;
}

/// The shard-side half of the delta protocol: the cache of what this
/// shard last shipped per query, and the reusable scratch buffers that
/// keep steady-state ticks free of per-tick allocation. Both the worker
/// thread and the cluster's `ShardService` drive their monitor through
/// one of these, so every kind of shard produces identical
/// [`TickOutcome`]s for identical request streams.
#[derive(Default)]
pub struct ShardTickState {
    // Last state shipped to the engine, per query: snapshots are sent as
    // deltas against this, so steady-state ticks move no result vectors.
    shipped: FxHashMap<QueryId, (f64, Vec<Neighbor>)>,
    // Monitor-facing batch, reassembled from each delta (the edge copy
    // out of the shared arena runs on the shard, off the router's
    // critical path) and reused across ticks.
    batch: UpdateBatch,
    installed: FxHashSet<QueryId>,
    live: FxHashSet<QueryId>,
}

impl ShardTickState {
    /// Fresh state (empty snapshot cache — the first response ships every
    /// query).
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the shipped-snapshot cache from a restored monitor state, so
    /// the first post-restore tick ships exactly the deltas an uncrashed
    /// shard would have shipped (the coordinator's `results_changed`
    /// bookkeeping depends on unchanged queries *not* reshipping).
    pub fn prime(&mut self, queries: &[rnn_core::snapshot::QuerySnapshotState]) {
        self.shipped.clear();
        for q in queries {
            self.shipped.insert(q.id, (q.knn_dist, q.result.clone()));
        }
    }

    /// Applies one delta batch to `monitor` and assembles the outcome,
    /// shipping only queries whose state changed since the last call.
    /// With `attribute_cells` the monitor's per-cell expansion charges are
    /// drained into the outcome; pass `false` when nothing consumes them
    /// (the rebalancer disabled) so the hand-off stays free.
    pub fn run_tick(
        &mut self,
        monitor: &mut dyn ContinuousMonitor,
        delta: DeltaBatch,
        attribute_cells: bool,
    ) -> TickOutcome {
        self.batch.edges.clear();
        self.batch.edges.extend_from_slice(&delta.shared_edges);
        self.batch.objects = delta.objects;
        self.batch.queries = delta.queries;
        // Freshly installed queries must always ship: the engine just
        // created an empty record for them, even when the monitor
        // reproduces a result this cache already saw (remove + reinstall
        // of the same id).
        self.installed.clear();
        self.installed
            .extend(self.batch.queries.iter().filter_map(|ev| match ev {
                QueryEvent::Install { id, .. } => Some(*id),
                _ => None,
            }));
        let report = monitor.tick(&self.batch);
        let ids = monitor.query_ids();
        self.live.clear();
        self.live.extend(ids.iter().copied());
        let live = &self.live;
        self.shipped.retain(|id, _| live.contains(id));
        let mut snapshots = Vec::new();
        for id in ids {
            let knn_dist = monitor.knn_dist(id).unwrap_or(f64::INFINITY);
            let result = monitor.result(id).unwrap_or_default();
            let unchanged = !self.installed.contains(&id)
                && self
                    .shipped
                    .get(&id)
                    .is_some_and(|(k, r)| *k == knn_dist && r.as_slice() == result);
            if unchanged {
                continue;
            }
            let owned = result.to_vec();
            self.shipped.insert(id, (knn_dist, owned.clone()));
            snapshots.push(QuerySnapshot {
                id,
                knn_dist,
                result: owned,
            });
        }
        // Drained only when the rebalance planner consumes the charges;
        // otherwise the monitors' per-tick buffers are simply cleared on
        // their next tick.
        let mut cell_charges = Vec::new();
        if attribute_cells {
            monitor.drain_cell_charges(&mut cell_charges);
        }
        TickOutcome {
            report,
            snapshots,
            active_groups: monitor.active_groups(),
            cell_charges,
        }
    }
}

impl WireCodec for DeltaBatch {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_seq(&self.objects, out);
        encode_seq(&self.queries, out);
        encode_seq(&self.shared_edges, out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(DeltaBatch {
            objects: decode_seq(r)?,
            queries: decode_seq(r)?,
            shared_edges: Arc::new(decode_seq(r)?),
            // The kind is carried by the frame tag, not the payload; the
            // shard side never branches on it.
            kind: BatchKind::Tick,
        })
    }
}

impl WireCodec for QuerySnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        put_f64(out, self.knn_dist);
        encode_seq(&self.result, out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(QuerySnapshot {
            id: QueryId::decode(r)?,
            knn_dist: r.f64()?,
            result: decode_seq(r)?,
        })
    }
}

impl WireCodec for TickOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        self.report.encode(out);
        encode_seq(&self.snapshots, out);
        match self.active_groups {
            None => put_u8(out, 0),
            Some(n) => {
                put_u8(out, 1);
                put_u64(out, n as u64);
            }
        }
        put_u32(out, self.cell_charges.len() as u32);
        for (edge, steps) in &self.cell_charges {
            edge.encode(out);
            put_u64(out, *steps);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let report = TickReport::decode(r)?;
        let snapshots = decode_seq(r)?;
        let active_groups = match r.u8()? {
            0 => None,
            1 => Some(r.u64()? as usize),
            _ => return Err(WireError::Invalid("TickOutcome active_groups flag")),
        };
        let n = r.u32()? as usize;
        if n > r.remaining() {
            return Err(WireError::Invalid("cell-charge count exceeds frame size"));
        }
        let mut cell_charges = Vec::with_capacity(n);
        for _ in 0..n {
            let edge = EdgeId::decode(r)?;
            let steps = r.u64()?;
            cell_charges.push((edge, steps));
        }
        Ok(TickOutcome {
            report,
            snapshots,
            active_groups,
            cell_charges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_roadnet::{NetPoint, ObjectId};

    #[test]
    fn delta_batch_round_trips_bit_identically() {
        let batch = DeltaBatch {
            objects: vec![ObjectEvent::Move {
                id: ObjectId(3),
                to: NetPoint::new(EdgeId(1), 0.5),
            }],
            queries: vec![QueryEvent::Install {
                id: QueryId(8),
                k: 4,
                at: NetPoint::new(EdgeId(2), 0.125),
            }],
            shared_edges: Arc::new(vec![EdgeWeightUpdate {
                edge: EdgeId(9),
                new_weight: 1.75,
            }]),
            kind: BatchKind::Resync,
        };
        let mut buf = Vec::new();
        batch.encode(&mut buf);
        let back = DeltaBatch::decode(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(back.objects, batch.objects);
        assert_eq!(back.queries, batch.queries);
        assert_eq!(*back.shared_edges, *batch.shared_edges);
    }

    #[test]
    fn tick_outcome_round_trips_including_infinity() {
        let outcome = TickOutcome {
            report: TickReport::default(),
            snapshots: vec![QuerySnapshot {
                id: QueryId(1),
                knn_dist: f64::INFINITY,
                result: vec![],
            }],
            active_groups: Some(17),
            cell_charges: vec![(EdgeId(4), 99)],
        };
        let mut buf = Vec::new();
        outcome.encode(&mut buf);
        let mut r = WireReader::new(&buf);
        assert_eq!(TickOutcome::decode(&mut r).unwrap(), outcome);
        assert_eq!(r.remaining(), 0);
    }
}
