//! Out-of-band ingest: a sharded MPSC submission stage in front of the
//! tick loop.
//!
//! The paper's protocol is synchronous — at every timestamp the server is
//! handed one [`UpdateBatch`] containing everything that happened. Real
//! feeds are not so polite: GPS probes, query installs, and congestion
//! sensors arrive continuously from many threads, and several reports for
//! the *same* entity routinely land inside one tick window. This module
//! is the stage between the two worlds:
//!
//! * **Sharded MPSC lanes.** An [`IngestHub`] owns `lanes` bounded
//!   queues; any number of cloned [`IngestHandle`]s submit concurrently.
//!   Every event is routed to lane `entity_id % lanes`, so contention
//!   spreads across lanes while *per-entity submission order is
//!   preserved* — the property §4.5 coalescing relies on.
//! * **Global ordering.** Each admitted event takes a ticket from one
//!   shared sequence counter (drawn while holding its lane lock, so each
//!   lane's queue is seq-sorted). The drain merges lanes by ticket,
//!   reconstructing the exact global submission order; with no
//!   coalescing triggered, the drained batch is **bit-identical** to one
//!   built by hand in submission order.
//! * **Tick-window coalescing** (§4.5: "if an entity issues several
//!   updates in one timestamp, they are coalesced"). Within one drain,
//!   later position reports overwrite earlier ones *in place* —
//!   `Install`+`Move` folds to `Install` at the final position
//!   (generalizing the install-then-move contract), `Move`+`Move` keeps
//!   the last position, and edge reports keep the last weight. `Delete` /
//!   `Remove` are never folded across: they close the entity's window,
//!   and later events start a fresh one. Every event superseded this way
//!   counts in [`DrainStats::coalesced_superseded`] — the answer is
//!   identical, the work is not done twice.
//! * **Admission control.** Lanes are bounded (`capacity`); a full lane
//!   applies its [`AdmissionPolicy`]: `Block` parks the producer until
//!   the next drain (lossless backpressure), `ShedOldest` drops the
//!   oldest queued event (counted in [`DrainStats::shed_events`] — the
//!   monitor lags but never stalls), `Reject` refuses the submission
//!   with a typed [`IngestError`] so the producer decides.
//!
//! The drain path is allocation-free in steady state: lane queues are
//! swapped against hub-owned ping-pong buffers (events *move*, event
//! slices are never cloned), and the merge scratch — the coalesce map
//! and the ordered event list — is epoch-stamped and reused across
//! ticks. Capacity growth anywhere on that path is counted in
//! [`DrainStats::drain_alloc_events`], which the benchmark gate pins to
//! zero once warm.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use rnn_core::{ObjectEvent, QueryEvent, UpdateBatch, UpdateEvent};

/// What a full lane does to a new submission.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Park the producer until the consumer drains the lane: lossless
    /// backpressure, the default. Producers slow to the tick rate.
    #[default]
    Block,
    /// Drop the *oldest* queued event in the lane to admit the new one.
    /// The monitor may serve answers that lag reality (shed moves are
    /// simply never seen), but producers never stall. Every drop counts
    /// in [`DrainStats::shed_events`].
    ShedOldest,
    /// Refuse the submission with [`IngestError::LaneFull`], leaving the
    /// queue untouched. Loss is explicit at the producer, never silent.
    Reject,
}

/// Tuning knobs of the ingest stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestConfig {
    /// Number of submission lanes. Events route by `entity_id % lanes`,
    /// so per-entity order holds regardless of the producer count.
    /// Clamped to at least 1 (and at most [`IngestHub::MAX_LANES`]) at
    /// hub construction; [`crate::EngineConfig::builder`] rejects
    /// out-of-range values with a typed error instead.
    pub lanes: usize,
    /// Per-lane bound, in events. A lane at capacity applies `policy`.
    /// Clamped to at least 1 at hub construction.
    pub capacity: usize,
    /// What a full lane does (see [`AdmissionPolicy`]).
    pub policy: AdmissionPolicy,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            lanes: 4,
            capacity: 4096,
            policy: AdmissionPolicy::Block,
        }
    }
}

/// Why a submission was refused. Only [`AdmissionPolicy::Reject`]
/// surfaces errors; the other policies always admit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The event's lane is at capacity and the hub runs
    /// [`AdmissionPolicy::Reject`].
    LaneFull {
        /// The full lane's index.
        lane: usize,
        /// The configured per-lane bound.
        capacity: usize,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::LaneFull { lane, capacity } => write!(
                f,
                "ingest lane {lane} is at capacity ({capacity} events) under \
                 AdmissionPolicy::Reject — drain the hub or resubmit later"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

/// What one [`IngestHub::drain_into`] call did. The engine folds these
/// into the tick's `OpCounters`; standalone hub users fold them into
/// whatever accounting they keep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Events handed to the batch (after coalescing).
    pub drained: u64,
    /// Events superseded by a later report for the same entity within
    /// this tick window (last-write-wins).
    pub coalesced_superseded: u64,
    /// Events dropped at admission by [`AdmissionPolicy::ShedOldest`]
    /// since the previous drain. These are *lost*, not folded.
    pub shed_events: u64,
    /// Capacity-growth events on the drain path (lane buffers, merge
    /// scratch, coalesce map). Zero once the hub is warm.
    pub drain_alloc_events: u64,
}

/// One bounded MPSC lane: a seq-stamped queue plus the condvar `Block`ed
/// producers park on.
struct Lane {
    queue: Mutex<VecDeque<(u64, UpdateEvent)>>,
    space: Condvar,
}

/// State shared between the hub (consumer) and its handles (producers).
struct HubShared {
    lanes: Vec<Lane>,
    /// The global submission ticket counter. Drawn under a lane lock, so
    /// every lane's queue is sorted by ticket and a k-way merge by
    /// ticket reconstructs the global submission order exactly.
    seq: AtomicU64,
    /// Events dropped by `ShedOldest` since the last drain.
    shed: AtomicU64,
    capacity: usize,
    policy: AdmissionPolicy,
}

fn lock_lane(lane: &Lane) -> MutexGuard<'_, VecDeque<(u64, UpdateEvent)>> {
    // A producer panicking mid-push cannot leave the deque in a broken
    // state (push_back is atomic with respect to panics), so poisoning
    // carries no information here — keep the hub serving.
    lane.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

impl HubShared {
    fn submit(&self, event: UpdateEvent) -> Result<(), IngestError> {
        let idx = (event.lane_key() % self.lanes.len() as u64) as usize;
        let lane = &self.lanes[idx];
        let mut q = lock_lane(lane);
        if q.len() >= self.capacity {
            match self.policy {
                AdmissionPolicy::Block => {
                    while q.len() >= self.capacity {
                        q = lane.space.wait(q).unwrap_or_else(PoisonError::into_inner);
                    }
                }
                AdmissionPolicy::ShedOldest => {
                    q.pop_front();
                    self.shed.fetch_add(1, Ordering::Relaxed);
                }
                AdmissionPolicy::Reject => {
                    return Err(IngestError::LaneFull {
                        lane: idx,
                        capacity: self.capacity,
                    });
                }
            }
        }
        let ticket = self.seq.fetch_add(1, Ordering::Relaxed);
        q.push_back((ticket, event));
        Ok(())
    }
}

/// A cloneable producer handle. Cheap to clone (one `Arc`), safe to move
/// across threads; any number may submit concurrently.
#[derive(Clone)]
pub struct IngestHandle {
    shared: Arc<HubShared>,
}

impl IngestHandle {
    /// Submits one event. Per-entity order is the submission order of
    /// whichever producer carries that entity; cross-entity order is the
    /// global ticket order. Fails only under [`AdmissionPolicy::Reject`]
    /// on a full lane; under [`AdmissionPolicy::Block`] this call parks
    /// until the consumer drains.
    pub fn submit(&self, event: UpdateEvent) -> Result<(), IngestError> {
        self.shared.submit(event)
    }

    /// Events currently queued across all lanes (a racy snapshot — other
    /// producers and the consumer move concurrently).
    pub fn pending(&self) -> usize {
        self.shared.lanes.iter().map(|l| lock_lane(l).len()).sum()
    }
}

/// Epoch-stamped open-addressing map: entity key → index of that
/// entity's latest coalescible event in the merge scratch. Clearing is
/// O(1) (bump the epoch); the table only reallocates when a drain sees
/// more distinct entities than ever before.
struct CoalesceMap {
    keys: Vec<u64>,
    /// Index into the merge scratch, or `TOMBSTONE` when the entity's
    /// window was closed by a `Delete`/`Remove` (the key stays in the
    /// probe chain; the slot just stops being a coalesce target).
    vals: Vec<u32>,
    stamps: Vec<u64>,
    epoch: u64,
    /// Live entries this epoch, to trigger growth before the load factor
    /// degrades probing.
    len: usize,
}

const TOMBSTONE: u32 = u32::MAX;

impl CoalesceMap {
    fn new() -> Self {
        Self {
            // lint: allow(hot-path-alloc): empty vecs; the table is sized on first use and grows only on new high-water entity counts (counted in drain_alloc_events)
            keys: Vec::new(),
            vals: Vec::new(), // lint: allow(hot-path-alloc): sized on first use
            stamps: Vec::new(),
            epoch: 0,
            len: 0,
        }
    }

    /// Starts a fresh tick window. Returns 1 if the table grew (an
    /// allocation event), 0 otherwise.
    fn begin(&mut self, expected: usize) -> u64 {
        self.epoch += 1;
        self.len = 0;
        let needed = (expected.max(8) * 2).next_power_of_two();
        if needed > self.keys.len() {
            // lint: allow(hot-path-alloc): table growth on a new high-water mark only; steady state reuses the epoch-stamped slots (drain_alloc_events pins this at zero once warm)
            self.keys = vec![0; needed];
            self.vals = vec![0; needed]; // lint: allow(hot-path-alloc): same high-water growth
            self.stamps = vec![0; needed];
            1
        } else {
            0
        }
    }

    /// The slot for `key` this epoch: `Some(index)` of an existing entry
    /// (which may hold `TOMBSTONE`), or `None` with the probe position
    /// left in `self.insert_at`-free form — callers use [`Self::set`].
    fn slot_of(&self, key: u64) -> usize {
        debug_assert!(self.keys.len().is_power_of_two());
        let mask = self.keys.len() - 1;
        // Fibonacci-style scramble; entity ids are dense small integers.
        let mut i = (key.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize & mask;
        loop {
            if self.stamps[i] != self.epoch || self.keys[i] == key {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Current value for `key`, if the entity has a live (non-tombstone)
    /// entry this epoch.
    fn get(&self, key: u64) -> Option<u32> {
        let i = self.slot_of(key);
        if self.stamps[i] == self.epoch && self.vals[i] != TOMBSTONE {
            Some(self.vals[i])
        } else {
            None
        }
    }

    /// Points `key` at `val` (or closes its window with `TOMBSTONE`).
    fn set(&mut self, key: u64, val: u32) {
        let i = self.slot_of(key);
        if self.stamps[i] != self.epoch {
            self.len += 1;
        }
        self.stamps[i] = self.epoch;
        self.keys[i] = key;
        self.vals[i] = val;
    }

    /// Whether the table must grow before admitting more entities (kept
    /// at load factor ≤ 1/2 so probe chains stay short).
    fn needs_growth(&self) -> bool {
        self.keys.is_empty() || self.len * 2 >= self.keys.len()
    }

    /// Grows the table mid-window, re-inserting this epoch's entries.
    fn grow(&mut self) {
        let new_cap = (self.keys.len().max(8) * 2).next_power_of_two();
        let old_keys = std::mem::take(&mut self.keys);
        let old_vals = std::mem::take(&mut self.vals);
        let old_stamps = std::mem::take(&mut self.stamps);
        let old_epoch = self.epoch;
        // lint: allow(hot-path-alloc): mid-window growth happens only on a new high-water entity count and is counted in drain_alloc_events
        self.keys = vec![0; new_cap];
        self.vals = vec![0; new_cap]; // lint: allow(hot-path-alloc): same high-water growth
        self.stamps = vec![0; new_cap];
        self.len = 0;
        for i in 0..old_keys.len() {
            if old_stamps[i] == old_epoch {
                self.set(old_keys[i], old_vals[i]);
            }
        }
    }
}

/// Entity key with the plane disambiguated in the high bits (object,
/// query, and edge ids are all dense `u32`s).
fn coalesce_key(event: &UpdateEvent) -> u64 {
    let plane = match event {
        UpdateEvent::Object(_) => 1u64,
        UpdateEvent::Query(_) => 2u64,
        UpdateEvent::Edge(_) => 3u64,
    };
    (plane << 32) | event.lane_key()
}

/// The ingest hub: owns the lanes, hands out producer handles, and
/// drains into an [`UpdateBatch`] at tick boundaries. Single consumer —
/// [`Self::drain_into`] takes `&mut self`.
pub struct IngestHub {
    shared: Arc<HubShared>,
    /// Ping-pong partners for the lane queues: each drain swaps a lane's
    /// queue against its (emptied) partner from the previous drain, so
    /// events move without per-drain allocation.
    swapped: Vec<VecDeque<(u64, UpdateEvent)>>,
    /// High-water capacity seen per lane buffer, to count growth.
    lane_cap_seen: Vec<usize>,
    /// The merged, coalesced event list in global submission order.
    merged: Vec<UpdateEvent>,
    map: CoalesceMap,
}

impl IngestHub {
    /// Lanes above this count would not help: the engine caps at 64
    /// shards, and the merge is a linear scan over lanes per event.
    pub const MAX_LANES: usize = 64;

    /// Creates a hub with `cfg`'s lane count, bound, and policy (lanes
    /// and capacity silently clamped to at least 1; use
    /// [`crate::EngineConfig::builder`] for validated construction).
    pub fn new(cfg: IngestConfig) -> Self {
        let lanes = cfg.lanes.clamp(1, Self::MAX_LANES);
        let capacity = cfg.capacity.max(1);
        let shared = Arc::new(HubShared {
            lanes: (0..lanes)
                .map(|_| Lane {
                    queue: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
                    space: Condvar::new(),
                })
                // lint: allow(hot-path-alloc): hub construction, not the drain path
                .collect(),
            seq: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            capacity,
            policy: cfg.policy,
        });
        Self {
            shared,
            swapped: (0..lanes)
                .map(|_| VecDeque::with_capacity(capacity.min(1024)))
                // lint: allow(hot-path-alloc): hub construction, not the drain path
                .collect(),
            lane_cap_seen: vec![0; lanes], // lint: allow(hot-path-alloc): hub construction
            // lint: allow(hot-path-alloc): hub construction, not the drain path
            merged: Vec::new(),
            map: CoalesceMap::new(),
        }
    }

    /// A new producer handle. Clone freely; handles stay valid for the
    /// hub's lifetime.
    pub fn handle(&self) -> IngestHandle {
        IngestHandle {
            shared: self.shared.clone(),
        }
    }

    /// The effective configuration (after clamping).
    pub fn config(&self) -> IngestConfig {
        IngestConfig {
            lanes: self.shared.lanes.len(),
            capacity: self.shared.capacity,
            policy: self.shared.policy,
        }
    }

    /// Drains everything submitted so far into `batch`, coalescing per
    /// entity, and wakes producers parked on full lanes. Events are
    /// appended in global submission order (the batch is *not* cleared —
    /// callers owning the buffer clear between ticks). Returns what
    /// happened; see [`DrainStats`].
    pub fn drain_into(&mut self, batch: &mut UpdateBatch) -> DrainStats {
        let mut stats = DrainStats {
            shed_events: self.shared.shed.swap(0, Ordering::Relaxed),
            ..DrainStats::default()
        };

        // Swap every lane's queue against its ping-pong partner. After
        // this loop producers write into fresh (reused) buffers and the
        // drain owns the submitted events without having cloned them.
        let mut total = 0usize;
        for (i, lane) in self.shared.lanes.iter().enumerate() {
            debug_assert!(self.swapped[i].is_empty());
            {
                let mut q = lock_lane(lane);
                std::mem::swap(&mut *q, &mut self.swapped[i]);
            }
            lane.space.notify_all();
            let cap = self.swapped[i].capacity();
            if cap > self.lane_cap_seen[i] {
                if self.lane_cap_seen[i] != 0 {
                    stats.drain_alloc_events += 1;
                }
                self.lane_cap_seen[i] = cap;
            }
            total += self.swapped[i].len();
        }
        if total == 0 {
            return stats;
        }

        // Merge lanes by ticket (k-way min-scan: the lane count is small
        // and fixed, so a heap would cost more than it saves), coalescing
        // into the scratch list as we go.
        self.merged.clear();
        let merged_cap = self.merged.capacity();
        stats.drain_alloc_events += self.map.begin(total);
        for _ in 0..total {
            let mut best: Option<usize> = None;
            let mut best_seq = u64::MAX;
            for (i, q) in self.swapped.iter().enumerate() {
                if let Some(&(seq, _)) = q.front() {
                    if seq < best_seq {
                        best_seq = seq;
                        best = Some(i);
                    }
                }
            }
            let lane = best.expect("total counted a non-empty lane");
            let (_, event) = self.swapped[lane]
                .pop_front()
                .expect("front observed above");
            stats.coalesced_superseded += self.coalesce(event);
        }
        if self.merged.capacity() > merged_cap && merged_cap != 0 {
            stats.drain_alloc_events += 1;
        }

        stats.drained = self.merged.len() as u64;
        for &event in &self.merged {
            batch.push(event);
        }
        stats
    }

    /// Folds one event into the merge scratch. Returns 1 if it superseded
    /// an earlier event (overwritten in place), 0 if it was appended.
    fn coalesce(&mut self, event: UpdateEvent) -> u64 {
        let key = coalesce_key(&event);
        match event {
            // Window-closing events: append, stop coalescing across.
            UpdateEvent::Object(ObjectEvent::Delete { .. })
            | UpdateEvent::Query(QueryEvent::Remove { .. }) => {
                self.append(key, event, TOMBSTONE);
                0
            }
            // Position reports fold into the entity's open window:
            // first kind wins, last position wins.
            UpdateEvent::Object(ObjectEvent::Move { to, .. }) => match self.map.get(key) {
                Some(idx) => {
                    let slot = &mut self.merged[idx as usize];
                    *slot = match *slot {
                        UpdateEvent::Object(ObjectEvent::Insert { id, .. }) => {
                            UpdateEvent::Object(ObjectEvent::Insert { id, at: to })
                        }
                        UpdateEvent::Object(ObjectEvent::Move { id, .. }) => {
                            UpdateEvent::Object(ObjectEvent::Move { id, to })
                        }
                        other => other,
                    };
                    1
                }
                None => {
                    let at = self.merged.len() as u32;
                    self.append(key, event, at);
                    0
                }
            },
            UpdateEvent::Query(QueryEvent::Move { to, .. }) => match self.map.get(key) {
                Some(idx) => {
                    let slot = &mut self.merged[idx as usize];
                    *slot = match *slot {
                        UpdateEvent::Query(QueryEvent::Install { id, k, .. }) => {
                            UpdateEvent::Query(QueryEvent::Install { id, k, at: to })
                        }
                        UpdateEvent::Query(QueryEvent::Move { id, .. }) => {
                            UpdateEvent::Query(QueryEvent::Move { id, to })
                        }
                        other => other,
                    };
                    1
                }
                None => {
                    let at = self.merged.len() as u32;
                    self.append(key, event, at);
                    0
                }
            },
            // Edge reports: last weight wins outright.
            UpdateEvent::Edge(_) => match self.map.get(key) {
                Some(idx) => {
                    self.merged[idx as usize] = event;
                    1
                }
                None => {
                    let at = self.merged.len() as u32;
                    self.append(key, event, at);
                    0
                }
            },
            // Window-opening events (Insert / Install): always appended —
            // a later Insert never rewrites an earlier Move in place —
            // and the window repoints here so later moves fold into it.
            UpdateEvent::Object(ObjectEvent::Insert { .. })
            | UpdateEvent::Query(QueryEvent::Install { .. }) => {
                let at = self.merged.len() as u32;
                self.append(key, event, at);
                0
            }
        }
    }

    fn append(&mut self, key: u64, event: UpdateEvent, val: u32) {
        if self.map.needs_growth() {
            self.map.grow();
        }
        self.merged.push(event);
        self.map.set(key, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnn_core::EdgeWeightUpdate;
    use rnn_roadnet::{EdgeId, NetPoint, ObjectId, QueryId};

    fn pt(e: u32, f: f64) -> NetPoint {
        NetPoint::new(EdgeId(e), f)
    }

    fn drain(hub: &mut IngestHub) -> (UpdateBatch, DrainStats) {
        let mut batch = UpdateBatch::default();
        let stats = hub.drain_into(&mut batch);
        (batch, stats)
    }

    #[test]
    fn preserves_global_submission_order_across_lanes() {
        let mut hub = IngestHub::new(IngestConfig {
            lanes: 3,
            ..IngestConfig::default()
        });
        let h = hub.handle();
        // Ids 0,1,2 land in different lanes; order must survive the merge.
        for i in 0..9u32 {
            h.submit(UpdateEvent::insert_object(ObjectId(i), pt(i, 0.5)))
                .unwrap();
        }
        let (batch, stats) = drain(&mut hub);
        assert_eq!(stats.drained, 9);
        assert_eq!(stats.coalesced_superseded, 0);
        let ids: Vec<u32> = batch
            .objects
            .iter()
            .map(|e| match e {
                ObjectEvent::Insert { id, .. } => id.0,
                _ => unreachable!("only inserts submitted"),
            })
            .collect();
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn coalesces_moves_last_write_wins() {
        let mut hub = IngestHub::new(IngestConfig::default());
        let h = hub.handle();
        h.submit(UpdateEvent::move_object(ObjectId(7), pt(0, 0.1)))
            .unwrap();
        h.submit(UpdateEvent::move_object(ObjectId(7), pt(1, 0.2)))
            .unwrap();
        h.submit(UpdateEvent::move_object(ObjectId(7), pt(2, 0.9)))
            .unwrap();
        let (batch, stats) = drain(&mut hub);
        assert_eq!(stats.drained, 1);
        assert_eq!(stats.coalesced_superseded, 2);
        assert_eq!(
            batch.objects,
            vec![ObjectEvent::Move {
                id: ObjectId(7),
                to: pt(2, 0.9)
            }]
        );
    }

    #[test]
    fn install_plus_move_folds_to_install_at_final_position() {
        let mut hub = IngestHub::new(IngestConfig::default());
        let h = hub.handle();
        h.submit(UpdateEvent::install_query(QueryId(3), 2, pt(0, 0.5)))
            .unwrap();
        h.submit(UpdateEvent::move_query(QueryId(3), pt(4, 0.25)))
            .unwrap();
        let (batch, stats) = drain(&mut hub);
        assert_eq!(stats.coalesced_superseded, 1);
        assert_eq!(
            batch.queries,
            vec![QueryEvent::Install {
                id: QueryId(3),
                k: 2,
                at: pt(4, 0.25)
            }]
        );
    }

    #[test]
    fn delete_closes_the_window() {
        let mut hub = IngestHub::new(IngestConfig::default());
        let h = hub.handle();
        h.submit(UpdateEvent::move_object(ObjectId(1), pt(0, 0.1)))
            .unwrap();
        h.submit(UpdateEvent::delete_object(ObjectId(1))).unwrap();
        h.submit(UpdateEvent::move_object(ObjectId(1), pt(2, 0.2)))
            .unwrap();
        let (batch, stats) = drain(&mut hub);
        // Nothing folds across the Delete: all three events survive.
        assert_eq!(stats.coalesced_superseded, 0);
        assert_eq!(batch.objects.len(), 3);
        assert_eq!(batch.objects[1], ObjectEvent::Delete { id: ObjectId(1) },);
    }

    #[test]
    fn edge_reports_keep_last_weight() {
        let mut hub = IngestHub::new(IngestConfig::default());
        let h = hub.handle();
        h.submit(UpdateEvent::edge(EdgeId(5), 2.0)).unwrap();
        h.submit(UpdateEvent::edge(EdgeId(5), 3.5)).unwrap();
        h.submit(UpdateEvent::edge(EdgeId(6), 1.0)).unwrap();
        let (batch, stats) = drain(&mut hub);
        assert_eq!(stats.coalesced_superseded, 1);
        assert_eq!(
            batch.edges,
            vec![
                EdgeWeightUpdate {
                    edge: EdgeId(5),
                    new_weight: 3.5
                },
                EdgeWeightUpdate {
                    edge: EdgeId(6),
                    new_weight: 1.0
                },
            ]
        );
    }

    #[test]
    fn reject_policy_surfaces_typed_error() {
        let mut hub = IngestHub::new(IngestConfig {
            lanes: 1,
            capacity: 2,
            policy: AdmissionPolicy::Reject,
        });
        let h = hub.handle();
        h.submit(UpdateEvent::edge(EdgeId(0), 1.0)).unwrap();
        h.submit(UpdateEvent::edge(EdgeId(1), 1.0)).unwrap();
        let err = h.submit(UpdateEvent::edge(EdgeId(2), 1.0)).unwrap_err();
        assert_eq!(
            err,
            IngestError::LaneFull {
                lane: 0,
                capacity: 2
            }
        );
        // Draining frees the lane; the producer can resubmit.
        let (_, stats) = drain(&mut hub);
        assert_eq!(stats.drained, 2);
        h.submit(UpdateEvent::edge(EdgeId(2), 1.0)).unwrap();
    }

    #[test]
    fn shed_oldest_drops_head_and_counts() {
        let mut hub = IngestHub::new(IngestConfig {
            lanes: 1,
            capacity: 2,
            policy: AdmissionPolicy::ShedOldest,
        });
        let h = hub.handle();
        h.submit(UpdateEvent::edge(EdgeId(0), 1.0)).unwrap();
        h.submit(UpdateEvent::edge(EdgeId(1), 1.0)).unwrap();
        h.submit(UpdateEvent::edge(EdgeId(2), 1.0)).unwrap();
        let (batch, stats) = drain(&mut hub);
        assert_eq!(stats.shed_events, 1);
        assert_eq!(stats.drained, 2);
        assert_eq!(batch.edges[0].edge, EdgeId(1), "oldest event was shed");
    }

    #[test]
    fn blocked_producer_resumes_after_drain() {
        let mut hub = IngestHub::new(IngestConfig {
            lanes: 1,
            capacity: 1,
            policy: AdmissionPolicy::Block,
        });
        let h = hub.handle();
        h.submit(UpdateEvent::edge(EdgeId(0), 1.0)).unwrap();
        let h2 = hub.handle();
        let producer = std::thread::spawn(move || {
            // Parks until the main thread drains, then lands.
            h2.submit(UpdateEvent::edge(EdgeId(1), 2.0)).unwrap();
        });
        // Wait until the producer is actually parked on the full lane,
        // then drain to release it.
        while !producer.is_finished() {
            let (batch, _) = drain(&mut hub);
            if batch.edges.iter().any(|e| e.edge == EdgeId(1)) {
                break;
            }
            std::thread::yield_now();
        }
        producer.join().unwrap();
    }

    #[test]
    fn steady_state_drain_is_allocation_free() {
        let mut hub = IngestHub::new(IngestConfig::default());
        let h = hub.handle();
        let mut batch = UpdateBatch::default();
        let mut warm = 0u64;
        for round in 0..50u32 {
            for i in 0..40u32 {
                h.submit(UpdateEvent::move_object(ObjectId(i), pt(i % 7, 0.5)))
                    .unwrap();
                h.submit(UpdateEvent::move_object(ObjectId(i), pt(i % 5, 0.25)))
                    .unwrap();
            }
            batch.clear();
            let stats = hub.drain_into(&mut batch);
            assert_eq!(stats.coalesced_superseded, 40);
            if round < 3 {
                warm += stats.drain_alloc_events;
            } else {
                assert_eq!(
                    stats.drain_alloc_events, 0,
                    "drain must reuse capacity once warm (round {round})"
                );
            }
        }
        // The warm-up itself must have been bounded.
        assert!(warm < 32, "warm-up allocation events: {warm}");
    }
}
