//! Per-shard worker threads.
//!
//! Each shard owns one [`ContinuousMonitor`] living on a dedicated thread.
//! The engine talks to it over a pair of mpsc channels with a strict
//! request/response discipline: every [`Request::Tick`] and
//! [`Request::Memory`] is answered by exactly one [`Response`], and the
//! engine always drains all outstanding responses before issuing new
//! requests, so the channels never hold more than one message per worker.
//!
//! Hand-off is **delta encoded** ([`DeltaBatch`]): the per-shard object and
//! query event slices are moved (never cloned) out of the router's pending
//! buffers, and the tick's edge-weight updates — which every shard must
//! see — travel as one shared `Arc` arena instead of `S` per-shard copies.
//! Each worker materialises its monitor-facing [`UpdateBatch`] into a
//! reusable scratch buffer on its own thread, so the router's critical
//! path does no per-shard event copying at all.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use rnn_core::{
    ContinuousMonitor, EdgeWeightUpdate, MemoryUsage, Neighbor, ObjectEvent, QueryEvent,
    TickReport, UpdateBatch,
};
use rnn_roadnet::{EdgeId, FxHashMap, FxHashSet, QueryId};

/// The events of one tick destined for a single shard: its own object and
/// query slices (moved from the router, append-only while pending) plus a
/// reference-counted view of the tick's shared edge-update arena.
pub(crate) struct DeltaBatch {
    /// Object events routed to this shard (owned, moved — never cloned).
    pub objects: Vec<ObjectEvent>,
    /// Query events routed to this shard (owned, moved — never cloned).
    pub queries: Vec<QueryEvent>,
    /// The tick's edge-weight updates, shared by every shard through one
    /// arena allocation (empty `Arc` on reconcile rounds).
    pub shared_edges: Arc<Vec<EdgeWeightUpdate>>,
}

/// What the engine asks a shard to do.
pub(crate) enum Request {
    /// Process one (sub-)batch and report back.
    Tick(DeltaBatch),
    /// Report the monitor's resident memory.
    Memory,
    /// Exit the worker loop.
    Shutdown,
}

/// A shard's answer.
pub(crate) enum Response {
    /// Outcome of a [`Request::Tick`].
    Tick(TickOutcome),
    /// Answer to [`Request::Memory`].
    Memory(MemoryUsage),
}

/// The state of one query after a worker processed a batch.
pub(crate) struct QuerySnapshot {
    /// The query.
    pub id: QueryId,
    /// Its `kNN_dist` (∞ while underfull).
    pub knn_dist: f64,
    /// Its current result, sorted by `(dist, id)`.
    pub result: Vec<Neighbor>,
}

/// Everything the engine needs back from one shard tick.
pub(crate) struct TickOutcome {
    /// The monitor's own report (op counters, worker wall-clock).
    pub report: TickReport,
    /// Queries whose state changed since the worker's last response (plus
    /// every query installed by this batch). Absence means "unchanged" —
    /// the engine keeps its cached result.
    pub snapshots: Vec<QuerySnapshot>,
    /// The monitor's grouping-unit count (GMA active nodes), if any.
    pub active_groups: Option<usize>,
    /// Expansion work attributed to partition cells: `(cell edge of the
    /// expansion root, Dijkstra steps)` per expansion the monitor ran this
    /// batch. Feeds the engine's per-cell load estimates (the rebalance
    /// planner's true-cost ranking).
    pub cell_charges: Vec<(EdgeId, u64)>,
}

/// Handle to one shard thread.
pub(crate) struct ShardWorker {
    tx: Sender<Request>,
    rx: Receiver<Response>,
    handle: Option<JoinHandle<()>>,
}

impl ShardWorker {
    /// Moves `monitor` onto a fresh worker thread. With `attribute_cells`
    /// the worker drains the monitor's per-cell expansion charges into
    /// every tick outcome; pass `false` when nothing consumes them (the
    /// rebalancer disabled) so the hand-off stays free.
    pub fn spawn(shard: usize, monitor: Box<dyn ContinuousMonitor>, attribute_cells: bool) -> Self {
        let (tx, req_rx) = channel();
        let (resp_tx, rx) = channel();
        let handle = std::thread::Builder::new()
            .name(format!("rnn-shard-{shard}"))
            .spawn(move || worker_loop(monitor, req_rx, resp_tx, attribute_cells))
            .expect("failed to spawn shard worker thread");
        Self {
            tx,
            rx,
            handle: Some(handle),
        }
    }

    /// Sends a request (never blocks).
    pub fn send(&self, req: Request) {
        self.tx.send(req).expect("shard worker thread is gone");
    }

    /// Blocks for the next response.
    pub fn recv(&self) -> Response {
        self.rx.recv().expect("shard worker thread panicked")
    }
}

impl Drop for ShardWorker {
    fn drop(&mut self) {
        // The worker may already be gone (e.g. it panicked); both the send
        // and the join error are then irrelevant during teardown.
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    mut monitor: Box<dyn ContinuousMonitor>,
    rx: Receiver<Request>,
    tx: Sender<Response>,
    attribute_cells: bool,
) {
    // Last state shipped to the engine, per query: snapshots are sent as
    // deltas against this, so steady-state ticks move no result vectors.
    let mut shipped: FxHashMap<QueryId, (f64, Vec<Neighbor>)> = FxHashMap::default();
    // Monitor-facing batch, reassembled from each delta on this thread
    // (the edge copy out of the shared arena runs on S workers in
    // parallel, off the router's critical path) and reused across ticks,
    // like the per-tick scratch sets below — steady-state ticks run in
    // capacity the worker already owns.
    let mut batch = UpdateBatch::default();
    let mut installed: FxHashSet<QueryId> = FxHashSet::default();
    let mut live: FxHashSet<QueryId> = FxHashSet::default();
    while let Ok(req) = rx.recv() {
        match req {
            Request::Tick(delta) => {
                batch.edges.clear();
                batch.edges.extend_from_slice(&delta.shared_edges);
                batch.objects = delta.objects;
                batch.queries = delta.queries;
                // Freshly installed queries must always ship: the engine
                // just created an empty record for them, even when the
                // monitor reproduces a result this cache already saw
                // (remove + reinstall of the same id).
                installed.clear();
                installed.extend(batch.queries.iter().filter_map(|ev| match ev {
                    QueryEvent::Install { id, .. } => Some(*id),
                    _ => None,
                }));
                let report = monitor.tick(&batch);
                let ids = monitor.query_ids();
                live.clear();
                live.extend(ids.iter().copied());
                shipped.retain(|id, _| live.contains(id));
                let mut snapshots = Vec::new();
                for id in ids {
                    let knn_dist = monitor.knn_dist(id).unwrap_or(f64::INFINITY);
                    let result = monitor.result(id).unwrap_or_default();
                    let unchanged = !installed.contains(&id)
                        && shipped
                            .get(&id)
                            .is_some_and(|(k, r)| *k == knn_dist && r.as_slice() == result);
                    if unchanged {
                        continue;
                    }
                    let owned = result.to_vec();
                    shipped.insert(id, (knn_dist, owned.clone()));
                    snapshots.push(QuerySnapshot {
                        id,
                        knn_dist,
                        result: owned,
                    });
                }
                // Drained only when the rebalance planner consumes the
                // charges; otherwise the monitors' per-tick buffers are
                // simply cleared on their next tick.
                let mut cell_charges = Vec::new();
                if attribute_cells {
                    monitor.drain_cell_charges(&mut cell_charges);
                }
                let outcome = TickOutcome {
                    report,
                    snapshots,
                    active_groups: monitor.active_groups(),
                    cell_charges,
                };
                if tx.send(Response::Tick(outcome)).is_err() {
                    break; // engine dropped mid-flight
                }
            }
            Request::Memory => {
                if tx.send(Response::Memory(monitor.memory())).is_err() {
                    break;
                }
            }
            Request::Shutdown => break,
        }
    }
}
