//! Per-shard worker threads: the in-process [`crate::protocol::ShardLink`].
//!
//! Each shard owns one [`ContinuousMonitor`] living on a dedicated thread.
//! The engine talks to it over a pair of mpsc channels with the strict
//! request/response discipline of the [`crate::protocol`] module, so the
//! channels never hold more than one message per worker. The per-tick
//! shard logic itself (delta reassembly, the shipped-snapshot cache)
//! lives in [`ShardTickState`], shared with the cluster's out-of-process
//! shard service.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use rnn_core::ContinuousMonitor;

use crate::protocol::{Request, Response, ShardLink, ShardTickState};

/// Handle to one shard thread.
pub struct ShardWorker {
    tx: Sender<Request>,
    rx: Receiver<Response>,
    handle: Option<JoinHandle<()>>,
}

impl ShardWorker {
    /// Moves `monitor` onto a fresh worker thread. With `attribute_cells`
    /// the worker drains the monitor's per-cell expansion charges into
    /// every tick outcome; pass `false` when nothing consumes them (the
    /// rebalancer disabled) so the hand-off stays free.
    pub fn spawn(shard: usize, monitor: Box<dyn ContinuousMonitor>, attribute_cells: bool) -> Self {
        let (tx, req_rx) = channel();
        let (resp_tx, rx) = channel();
        let handle = std::thread::Builder::new()
            .name(format!("rnn-shard-{shard}"))
            .spawn(move || worker_loop(monitor, req_rx, resp_tx, attribute_cells))
            .expect("failed to spawn shard worker thread");
        Self {
            tx,
            rx,
            handle: Some(handle),
        }
    }
}

impl ShardLink for ShardWorker {
    /// Sends a request (never blocks).
    fn send(&self, req: Request) {
        self.tx.send(req).expect("shard worker thread is gone");
    }

    /// Blocks for the next response.
    fn recv(&self) -> Response {
        self.rx.recv().expect("shard worker thread panicked")
    }
}

impl Drop for ShardWorker {
    fn drop(&mut self) {
        // The worker may already be gone (e.g. it panicked); both the send
        // and the join error are then irrelevant during teardown.
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    mut monitor: Box<dyn ContinuousMonitor>,
    rx: Receiver<Request>,
    tx: Sender<Response>,
    attribute_cells: bool,
) {
    let mut state = ShardTickState::new();
    while let Ok(req) = rx.recv() {
        match req {
            Request::Tick(delta) => {
                let outcome = state.run_tick(&mut *monitor, delta, attribute_cells);
                if tx.send(Response::Tick(outcome)).is_err() {
                    break; // engine dropped mid-flight
                }
            }
            Request::Memory => {
                if tx.send(Response::Memory(monitor.memory())).is_err() {
                    break;
                }
            }
            Request::Snapshot => {
                let snap = monitor.snapshot_state().map(Box::new);
                if tx.send(Response::Snapshot(snap)).is_err() {
                    break;
                }
            }
            Request::Restore(snap) => {
                let ok = snap.restore_into(&mut *monitor).is_ok();
                if ok {
                    state.prime(&snap.queries);
                }
                if tx.send(Response::Restored(ok)).is_err() {
                    break;
                }
            }
            Request::Shutdown => break,
        }
    }
}
