//! Engine configuration.

use std::sync::Arc;

use rnn_core::{ContinuousMonitor, Gma, Ima, Ovh};
use rnn_roadnet::RoadNetwork;

/// Which of the paper's monitors runs inside each shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardAlgo {
    /// From-scratch baseline (§6).
    Ovh,
    /// Incremental monitoring (§4).
    Ima,
    /// Group monitoring (§5) — the default.
    Gma,
}

impl ShardAlgo {
    /// Instantiates the per-shard monitor.
    pub(crate) fn make(self, net: Arc<RoadNetwork>) -> Box<dyn ContinuousMonitor> {
        match self {
            ShardAlgo::Ovh => Box::new(Ovh::new(net)),
            ShardAlgo::Ima => Box::new(Ima::new(net)),
            ShardAlgo::Gma => Box::new(Gma::new(net)),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ShardAlgo::Ovh => "OVH",
            ShardAlgo::Ima => "IMA",
            ShardAlgo::Gma => "GMA",
        }
    }
}

/// Tuning knobs of the sharded engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of shards (= worker threads), 1 ..= 64.
    /// [`crate::ShardedEngine::new`] panics on anything outside that range
    /// (shard visibility is tracked in a 64-bit mask per edge).
    pub num_shards: usize,
    /// The monitor each shard runs.
    pub algo: ShardAlgo,
    /// Relative slack added when a halo grows: the new radius is
    /// `needed × (1 + halo_slack)`. More slack means fewer halo rebuilds
    /// when `kNN_dist` drifts upward, at the cost of more replicas.
    pub halo_slack: f64,
    /// Shrink hysteresis threshold (≥ 1). A shard's halo is considered
    /// oversized when its radius exceeds `needed × (1 + halo_slack) ×
    /// halo_shrink_trigger`; values `< 1` are treated as 1 (shrink on any
    /// decrease). Larger values tolerate more stale replication before
    /// paying a halo rebuild.
    pub halo_shrink_trigger: f64,
    /// Number of *consecutive* ticks a halo must stay oversized before it
    /// is shrunk and its stale replicas evicted. Guards against
    /// grow/shrink flapping when `kNN_dist` oscillates tick to tick.
    pub halo_shrink_ticks: u32,
    /// Load-imbalance ratio that triggers a shard rebalance: when the
    /// smoothed per-shard load estimate (worker `expansion_steps` plus
    /// routed events, exponentially averaged over ticks) satisfies
    /// `max > mean × rebalance_trigger`, boundary cells migrate from the
    /// most loaded shard to an underloaded neighbour. Values below 1
    /// **disable** rebalancing (the default, 0.0): shard assignment then
    /// stays fixed at the startup partition and every work counter is
    /// bit-identical to earlier releases.
    pub rebalance_trigger: f64,
    /// Minimum number of ticks between rebalances (and before the first
    /// one). Together with the exponential load smoothing this is the
    /// detector's hysteresis: a hotspot must persist, and a migration must
    /// settle, before cells move again.
    pub rebalance_cooldown: u32,
    /// Expected number of concurrent expansion trees per shard (roughly:
    /// queries per shard, or active intersection nodes for GMA). When
    /// non-zero, each shard monitor pre-provisions its
    /// [`rnn_core::tree::TreePool`] with that many spare directories at
    /// construction, so the first tick's tree builds recycle warm buffers
    /// instead of paying counted `install_alloc_events`. `0` (the
    /// default) skips the warm-up entirely and is bit-identical to
    /// earlier releases.
    pub tree_pool_hint: usize,
    /// What to do when a shard link reports itself permanently down
    /// (`Response::Down`: its transport died and recovery exhausted every
    /// retry). `false` (the default) keeps the historical contract — a
    /// lost shard is fatal and the engine panics. `true` lets surviving
    /// shards adopt the corpse's cells through the migration planner
    /// ("recovery is rebalance away from a corpse"): ownership reassigns,
    /// objects resync from the coordinator's registry, and queries
    /// re-home with freshly computed results.
    pub takeover: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            algo: ShardAlgo::Gma,
            halo_slack: 0.25,
            halo_shrink_trigger: 1.5,
            halo_shrink_ticks: 2,
            rebalance_trigger: 0.0,
            rebalance_cooldown: 8,
            tree_pool_hint: 0,
            takeover: false,
        }
    }
}

impl EngineConfig {
    /// A config with `num_shards` shards and defaults otherwise.
    pub fn with_shards(num_shards: usize) -> Self {
        Self {
            num_shards,
            ..Self::default()
        }
    }

    /// A config with `num_shards` shards and dynamic load-aware
    /// rebalancing enabled at moderate hysteresis (trigger 1.25×,
    /// cooldown 4 ticks), defaults otherwise. This is the configuration
    /// the benchmark harness runs as `ENG-n-RB`.
    pub fn with_rebalancing(num_shards: usize) -> Self {
        Self {
            num_shards,
            rebalance_trigger: 1.25,
            rebalance_cooldown: 4,
            ..Self::default()
        }
    }

    /// Whether shard monitors must attribute per-tick load to partition
    /// cells. The charge hand-off only feeds the rebalance planner, so it
    /// is skipped entirely when rebalancing is disabled or there is
    /// nothing to migrate between.
    pub fn attribute_cells(&self) -> bool {
        self.rebalance_trigger >= 1.0 && self.num_shards >= 2
    }

    /// Instantiates one shard monitor per this config, honouring
    /// [`Self::tree_pool_hint`]. With a zero hint this is exactly the
    /// plain constructor path (no warm-up, bit-identical counters).
    pub fn make_monitor(&self, net: Arc<RoadNetwork>) -> Box<dyn ContinuousMonitor> {
        if self.tree_pool_hint == 0 {
            return self.algo.make(net);
        }
        let hint = self.tree_pool_hint;
        match self.algo {
            ShardAlgo::Ovh => Box::new(Ovh::with_tree_pool_hint(net, hint)),
            ShardAlgo::Ima => Box::new(Ima::with_tree_pool_hint(net, hint)),
            ShardAlgo::Gma => Box::new(Gma::with_tree_pool_hint(net, hint)),
        }
    }
}
