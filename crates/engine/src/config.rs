//! Engine configuration.

use std::sync::Arc;

use rnn_core::{ContinuousMonitor, Gma, Ima, Ovh};
use rnn_roadnet::RoadNetwork;

use crate::engine::EngineError;
use crate::ingest::{AdmissionPolicy, IngestConfig, IngestHub};

/// Which of the paper's monitors runs inside each shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardAlgo {
    /// From-scratch baseline (§6).
    Ovh,
    /// Incremental monitoring (§4).
    Ima,
    /// Group monitoring (§5) — the default.
    Gma,
}

impl ShardAlgo {
    /// Instantiates the per-shard monitor.
    pub(crate) fn make(self, net: Arc<RoadNetwork>) -> Box<dyn ContinuousMonitor> {
        match self {
            ShardAlgo::Ovh => Box::new(Ovh::new(net)),
            ShardAlgo::Ima => Box::new(Ima::new(net)),
            ShardAlgo::Gma => Box::new(Gma::new(net)),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ShardAlgo::Ovh => "OVH",
            ShardAlgo::Ima => "IMA",
            ShardAlgo::Gma => "GMA",
        }
    }
}

/// The per-shard log-replication plane (consumed by the cluster layer;
/// the in-process engine ignores it). The default — `replicas: 0` —
/// disables replication entirely and is bit-identical to earlier
/// releases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Follower replicas per shard (F). Each holds a copy of the
    /// shard's event log and can be promoted to serving leader when the
    /// shard dies past its retry + recovery budgets. `0` disables
    /// replication.
    pub replicas: u32,
    /// Acks an appended event needs before it *commits* (becomes
    /// eligible for WAL truncation and for feeding the shard monitor).
    /// Must be `1..=replicas` when replication is on; clamped downward
    /// at runtime as followers die, so losing followers degrades
    /// redundancy rather than availability.
    pub quorum: u32,
    /// Send a liveness heartbeat to every follower once per this many
    /// appends (the failure detector's probe cadence). `0` disables
    /// heartbeats; follower death is then detected on the append path.
    pub heartbeat_every: u32,
}

impl ReplicationConfig {
    /// Replication with `replicas` followers and a majority quorum
    /// (`replicas / 2 + 1`), heartbeating every 8 appends.
    pub fn with_replicas(replicas: u32) -> Self {
        Self {
            replicas,
            quorum: replicas / 2 + 1,
            heartbeat_every: 8,
        }
    }
}

/// Tuning knobs of the sharded engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Number of shards (= worker threads), 1 ..= 64.
    /// [`crate::ShardedEngine::new`] panics on anything outside that range
    /// (shard visibility is tracked in a 64-bit mask per edge).
    pub num_shards: usize,
    /// The monitor each shard runs.
    pub algo: ShardAlgo,
    /// Relative slack added when a halo grows: the new radius is
    /// `needed × (1 + halo_slack)`. More slack means fewer halo rebuilds
    /// when `kNN_dist` drifts upward, at the cost of more replicas.
    pub halo_slack: f64,
    /// Shrink hysteresis threshold (≥ 1). A shard's halo is considered
    /// oversized when its radius exceeds `needed × (1 + halo_slack) ×
    /// halo_shrink_trigger`; values `< 1` are treated as 1 (shrink on any
    /// decrease). Larger values tolerate more stale replication before
    /// paying a halo rebuild.
    pub halo_shrink_trigger: f64,
    /// Number of *consecutive* ticks a halo must stay oversized before it
    /// is shrunk and its stale replicas evicted. Guards against
    /// grow/shrink flapping when `kNN_dist` oscillates tick to tick.
    pub halo_shrink_ticks: u32,
    /// Load-imbalance ratio that triggers a shard rebalance: when the
    /// smoothed per-shard load estimate (worker `expansion_steps` plus
    /// routed events, exponentially averaged over ticks) satisfies
    /// `max > mean × rebalance_trigger`, boundary cells migrate from the
    /// most loaded shard to an underloaded neighbour. Values below 1
    /// **disable** rebalancing (the default, 0.0): shard assignment then
    /// stays fixed at the startup partition and every work counter is
    /// bit-identical to earlier releases.
    pub rebalance_trigger: f64,
    /// Minimum number of ticks between rebalances (and before the first
    /// one). Together with the exponential load smoothing this is the
    /// detector's hysteresis: a hotspot must persist, and a migration must
    /// settle, before cells move again.
    pub rebalance_cooldown: u32,
    /// Expected number of concurrent expansion trees per shard (roughly:
    /// queries per shard, or active intersection nodes for GMA). When
    /// non-zero, each shard monitor pre-provisions its
    /// [`rnn_core::tree::TreePool`] with that many spare directories at
    /// construction, so the first tick's tree builds recycle warm buffers
    /// instead of paying counted `install_alloc_events`. `0` (the
    /// default) skips the warm-up entirely and is bit-identical to
    /// earlier releases.
    pub tree_pool_hint: usize,
    /// What to do when a shard link reports itself permanently down
    /// (`Response::Down`: its transport died and recovery exhausted every
    /// retry). `false` (the default) keeps the historical contract — a
    /// lost shard is fatal and the engine panics. `true` lets surviving
    /// shards adopt the corpse's cells through the migration planner
    /// ("recovery is rebalance away from a corpse"): ownership reassigns,
    /// objects resync from the coordinator's registry, and queries
    /// re-home with freshly computed results.
    pub takeover: bool,
    /// The out-of-band ingest stage in front of the tick loop: lane
    /// count, per-lane bound, and admission policy (see
    /// [`crate::ingest`]). The default (4 lanes × 4096 events,
    /// `Block`) costs nothing unless [`crate::ShardedEngine::ingest_handle`]
    /// is actually used.
    pub ingest: IngestConfig,
    /// The per-shard replicated-journal plane (see
    /// [`ReplicationConfig`]). Only the cluster layer consumes it; the
    /// in-process engine ignores it entirely. Disabled by default.
    pub replication: ReplicationConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            algo: ShardAlgo::Gma,
            halo_slack: 0.25,
            halo_shrink_trigger: 1.5,
            halo_shrink_ticks: 2,
            rebalance_trigger: 0.0,
            rebalance_cooldown: 8,
            tree_pool_hint: 0,
            takeover: false,
            ingest: IngestConfig::default(),
            replication: ReplicationConfig::default(),
        }
    }
}

impl EngineConfig {
    /// A config with `num_shards` shards and defaults otherwise.
    pub fn with_shards(num_shards: usize) -> Self {
        Self {
            num_shards,
            ..Self::default()
        }
    }

    /// A config with `num_shards` shards and dynamic load-aware
    /// rebalancing enabled at moderate hysteresis (trigger 1.25×,
    /// cooldown 4 ticks), defaults otherwise. This is the configuration
    /// the benchmark harness runs as `ENG-n-RB`.
    pub fn with_rebalancing(num_shards: usize) -> Self {
        Self {
            num_shards,
            rebalance_trigger: 1.25,
            rebalance_cooldown: 4,
            ..Self::default()
        }
    }

    /// Whether shard monitors must attribute per-tick load to partition
    /// cells. The charge hand-off only feeds the rebalance planner, so it
    /// is skipped entirely when rebalancing is disabled or there is
    /// nothing to migrate between.
    pub fn attribute_cells(&self) -> bool {
        self.rebalance_trigger >= 1.0 && self.num_shards >= 2
    }

    /// Instantiates one shard monitor per this config, honouring
    /// [`Self::tree_pool_hint`]. With a zero hint this is exactly the
    /// plain constructor path (no warm-up, bit-identical counters).
    pub fn make_monitor(&self, net: Arc<RoadNetwork>) -> Box<dyn ContinuousMonitor> {
        if self.tree_pool_hint == 0 {
            return self.algo.make(net);
        }
        let hint = self.tree_pool_hint;
        match self.algo {
            ShardAlgo::Ovh => Box::new(Ovh::with_tree_pool_hint(net, hint)),
            ShardAlgo::Ima => Box::new(Ima::with_tree_pool_hint(net, hint)),
            ShardAlgo::Gma => Box::new(Gma::with_tree_pool_hint(net, hint)),
        }
    }

    /// A validating builder. Prefer this over struct-literal construction
    /// when any knob comes from user input: [`EngineConfigBuilder::build`]
    /// reports the first invalid knob as a typed [`EngineError`] instead
    /// of deferring to a constructor panic (or to silent misbehaviour —
    /// struct literals accept a NaN `halo_slack` without complaint).
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Validates every knob, returning the first violation. This is the
    /// single source of truth the builder and the constructors share.
    pub(crate) fn validate(&self) -> Result<(), EngineError> {
        if !(1..=64).contains(&self.num_shards) {
            return Err(EngineError::InvalidShardCount {
                got: self.num_shards,
            });
        }
        let finite_ratio = |field: &'static str, v: f64| {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(EngineError::InvalidKnob {
                    field,
                    requirement: "a finite, non-negative ratio",
                })
            }
        };
        finite_ratio("halo_slack", self.halo_slack)?;
        finite_ratio("halo_shrink_trigger", self.halo_shrink_trigger)?;
        finite_ratio("rebalance_trigger", self.rebalance_trigger)?;
        if !(1..=IngestHub::MAX_LANES).contains(&self.ingest.lanes) {
            return Err(EngineError::InvalidKnob {
                field: "ingest.lanes",
                requirement: "in 1..=64 (the merge scans lanes linearly)",
            });
        }
        if self.ingest.capacity == 0 {
            return Err(EngineError::InvalidKnob {
                field: "ingest.capacity",
                requirement: "at least 1 event per lane",
            });
        }
        if self.replication.replicas > 0
            && !(1..=self.replication.replicas).contains(&self.replication.quorum)
        {
            return Err(EngineError::InvalidKnob {
                field: "replication.quorum",
                requirement: "in 1..=replicas when replication is enabled",
            });
        }
        Ok(())
    }
}

/// Builder for [`EngineConfig`] with validation at [`Self::build`]. See
/// [`EngineConfig::builder`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets the shard count (validated to `1..=64` at build).
    pub fn shards(mut self, num_shards: usize) -> Self {
        self.cfg.num_shards = num_shards;
        self
    }

    /// Sets the per-shard monitor algorithm.
    pub fn algo(mut self, algo: ShardAlgo) -> Self {
        self.cfg.algo = algo;
        self
    }

    /// Sets the halo growth slack ratio.
    pub fn halo_slack(mut self, slack: f64) -> Self {
        self.cfg.halo_slack = slack;
        self
    }

    /// Sets the halo shrink hysteresis threshold.
    pub fn halo_shrink_trigger(mut self, trigger: f64) -> Self {
        self.cfg.halo_shrink_trigger = trigger;
        self
    }

    /// Sets the halo shrink streak length, in ticks.
    pub fn halo_shrink_ticks(mut self, ticks: u32) -> Self {
        self.cfg.halo_shrink_ticks = ticks;
        self
    }

    /// Sets the load-imbalance rebalance trigger (values below 1 disable
    /// rebalancing).
    pub fn rebalance_trigger(mut self, trigger: f64) -> Self {
        self.cfg.rebalance_trigger = trigger;
        self
    }

    /// Sets the minimum ticks between rebalances.
    pub fn rebalance_cooldown(mut self, ticks: u32) -> Self {
        self.cfg.rebalance_cooldown = ticks;
        self
    }

    /// Sets the per-shard tree-pool warm-up hint.
    pub fn tree_pool_hint(mut self, hint: usize) -> Self {
        self.cfg.tree_pool_hint = hint;
        self
    }

    /// Enables (or disables) dead-shard takeover.
    pub fn takeover(mut self, enabled: bool) -> Self {
        self.cfg.takeover = enabled;
        self
    }

    /// Replaces the whole ingest configuration.
    pub fn ingest(mut self, ingest: IngestConfig) -> Self {
        self.cfg.ingest = ingest;
        self
    }

    /// Replaces the whole replication configuration (validated at
    /// build: when `replicas > 0`, `quorum` must be in `1..=replicas`).
    pub fn replication(mut self, replication: ReplicationConfig) -> Self {
        self.cfg.replication = replication;
        self
    }

    /// Sets the ingest lane count (validated to `1..=64` at build).
    pub fn ingest_lanes(mut self, lanes: usize) -> Self {
        self.cfg.ingest.lanes = lanes;
        self
    }

    /// Sets the per-lane ingest bound (validated to `>= 1` at build).
    pub fn ingest_capacity(mut self, capacity: usize) -> Self {
        self.cfg.ingest.capacity = capacity;
        self
    }

    /// Sets what a full ingest lane does.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.cfg.ingest.policy = policy;
        self
    }

    /// Validates and returns the configuration. The first invalid knob
    /// comes back as a typed [`EngineError`]; nothing panics.
    pub fn build(self) -> Result<EngineConfig, EngineError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}
