//! # rnn-engine
//!
//! A sharded, multi-threaded continuous-monitoring engine on top of the
//! single-server algorithms of Mouratidis et al. (VLDB 2006).
//!
//! The paper's monitors (OVH/IMA/GMA, see `rnn-core`) are single-threaded:
//! one server owns every object, query, and edge weight. To serve
//! production-scale load the engine partitions the road network into `S`
//! connected regions ([`rnn_roadnet::partition`]), runs one monitor per
//! region on a dedicated worker thread, routes each update to the shard(s)
//! that must see it, and fans `tick()` out in parallel.
//!
//! Cross-border correctness comes from **halo replication**: every shard
//! additionally sees the objects within network distance `r_s` of its
//! region boundary, where `r_s` is kept at least as large as the largest
//! `kNN_dist` among the shard's queries. Under that invariant each shard's
//! answers are provably identical to a single global monitor's (see
//! [`engine`] module docs for the argument), which the differential test
//! suite checks tick-by-tick against plain GMA/IMA.
//!
//! Replication is maintained *incrementally*: an edge→object index limits
//! halo resync to the objects on edges whose membership actually changed,
//! halos shrink with hysteresis when demand drops (evicting stale
//! replicas), and worker hand-off is delta encoded behind a shared `Arc`
//! arena so the router never clones a batch per shard. The
//! `resync_touched` / `replica_evictions` counters (on
//! [`ShardedEngine`] and in each tick's `OpCounters`) make the
//! O(changed-edges) maintenance cost observable.
//!
//! ```
//! use rnn_core::{ContinuousMonitor, UpdateEvent};
//! use rnn_engine::{EngineConfig, ShardedEngine};
//! use rnn_roadnet::{generators, EdgeId, NetPoint, ObjectId, QueryId};
//! use std::sync::Arc;
//!
//! let net = Arc::new(generators::grid_city(&generators::GridCityConfig {
//!     nx: 6, ny: 6, seed: 1, ..Default::default()
//! }));
//! let mut engine = ShardedEngine::new(net.clone(), EngineConfig::with_shards(4));
//! for (i, e) in net.edge_ids().enumerate().step_by(5) {
//!     engine.apply(UpdateEvent::insert_object(ObjectId(i as u32), NetPoint::new(e, 0.5)));
//! }
//! engine.apply(UpdateEvent::install_query(QueryId(0), 3, NetPoint::new(EdgeId(0), 0.25)));
//! assert_eq!(engine.result(QueryId(0)).unwrap().len(), 3);
//! ```
//!
//! The engine implements [`rnn_core::ContinuousMonitor`] itself, so any
//! driver that feeds a single monitor — scenario replay, the benchmark
//! harness, the differential tests — drives the sharded fleet unchanged.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod ingest;
pub mod protocol;
pub mod worker;

pub use config::{EngineConfig, EngineConfigBuilder, ReplicationConfig, ShardAlgo};
pub use engine::{EngineError, ShardedEngine};
pub use ingest::{AdmissionPolicy, DrainStats, IngestConfig, IngestError, IngestHandle, IngestHub};
pub use protocol::{
    BatchKind, DeltaBatch, QuerySnapshot, Request, Response, ShardLink, ShardTickState, TickOutcome,
};
