//! The cluster coordinator: a [`ShardedEngine`] whose shards live behind
//! RPC links instead of in-process threads.
//!
//! [`ClusterEngine`] reuses the engine's routing/absorption machinery
//! wholesale — partitioning, halo replication, reconcile rounds,
//! migration — by instantiating `ShardedEngine<RemoteShard>`. The only
//! cluster-specific surface is construction (wiring a transport per
//! shard) and the transport counters.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use rnn_core::{
    ContinuousMonitor, MemoryUsage, Neighbor, TickReport, TransportStats, UpdateBatch, UpdateEvent,
};
use rnn_engine::{EngineConfig, ShardedEngine};
use rnn_roadnet::{EdgeId, QueryId, RoadNetwork};

use crate::client::{DurabilityConfig, RemoteShard, RespawnFn, RetryPolicy};
use crate::replica::{MonitorFactory, ReplicaNode};
use crate::replog::ReplicatedLog;
use crate::service::ShardService;
use crate::transport::{loopback_pair, FaultPlan, LoopbackPeer, StreamTransport, Transport};

/// A sharded continuous-monitoring engine whose shard monitors run
/// behind RPC links (loopback threads, Unix-socket processes, or TCP
/// peers), answer-identical to the in-process [`ShardedEngine`].
pub struct ClusterEngine {
    engine: ShardedEngine<RemoteShard>,
}

fn spawn_loopback_service(
    shard: usize,
    peer: LoopbackPeer,
    monitor: Box<dyn ContinuousMonitor>,
    attribute_cells: bool,
) {
    std::thread::Builder::new()
        .name(format!("rnn-cluster-shard-{shard}"))
        .spawn(move || ShardService::new(peer, monitor, attribute_cells).run())
        .expect("spawn shard service");
}

/// Builds the replicated-journal plane for one shard, per
/// `cfg.replication`: spawns each follower as a [`ReplicaNode`] thread
/// over a fault-free loopback pair (replicas ride in the coordinator
/// process; faults are injected on the *shard* link, which is the one
/// that fails over) and returns the leader-side log for the link to
/// adopt. `None` when replication is disabled.
fn spawn_replicas(
    shard: usize,
    net: &Arc<RoadNetwork>,
    cfg: &EngineConfig,
    epoch_dir: Option<std::path::PathBuf>,
) -> Option<ReplicatedLog> {
    let rep = cfg.replication;
    if rep.replicas == 0 {
        return None;
    }
    let attribute_cells = cfg.attribute_cells();
    let transports = (0..rep.replicas)
        .map(|r| {
            let (leader, peer) = loopback_pair(FaultPlan::default());
            let net2 = net.clone();
            let cfg2 = *cfg;
            let make: MonitorFactory = Box::new(move || cfg2.make_monitor(net2));
            std::thread::Builder::new()
                .name(format!("rnn-replica-{shard}-{r}"))
                .spawn(move || ReplicaNode::new(peer, make, attribute_cells).run())
                .expect("spawn replica node");
            Box::new(leader) as Box<dyn Transport>
        })
        .collect();
    // A restarted coordinator resumes from its persisted term so a
    // pre-restart stale leader stays fenced.
    let epoch = epoch_dir.as_deref().map_or(0, crate::wal::load_epoch);
    Some(ReplicatedLog::new(
        shard,
        transports,
        rep.quorum,
        rep.heartbeat_every,
        epoch,
        epoch_dir,
    ))
}

impl ClusterEngine {
    /// A fault-free loopback cluster: one service thread per shard,
    /// in-process channel transports, default retry policy.
    pub fn loopback(net: Arc<RoadNetwork>, cfg: EngineConfig) -> Self {
        Self::loopback_with_faults(net, cfg, &[FaultPlan::default()], RetryPolicy::default())
    }

    /// A loopback cluster with fault injection: shard `s` gets
    /// `plans[s % plans.len()]` (pass one plan to apply it everywhere).
    /// Crashed services are respawned with a fresh, fault-free transport
    /// and rebuilt by journal replay (unless the plan marks respawns
    /// stillborn — see [`FaultPlan::respawn_dead`]).
    pub fn loopback_with_faults(
        net: Arc<RoadNetwork>,
        cfg: EngineConfig,
        plans: &[FaultPlan],
        policy: RetryPolicy,
    ) -> Self {
        Self::loopback_durable(net, cfg, plans, policy, DurabilityConfig::default())
    }

    /// A loopback cluster with fault injection **and** the per-shard
    /// durability plane: each link snapshots its shard every
    /// `durability.snapshot_every` journaled event frames and recovers
    /// crashes from snapshot + journal suffix. When `durability.dir` is
    /// set, shard `s` persists its WAL and snapshots under
    /// `dir/shard-<s>/`. The default `DurabilityConfig` (snapshots off)
    /// makes this exactly [`Self::loopback_with_faults`].
    pub fn loopback_durable(
        net: Arc<RoadNetwork>,
        cfg: EngineConfig,
        plans: &[FaultPlan],
        policy: RetryPolicy,
        durability: DurabilityConfig,
    ) -> Self {
        assert!(!plans.is_empty(), "at least one fault plan");
        let attribute_cells = cfg.attribute_cells();
        let links = (0..cfg.num_shards)
            .map(|s| {
                let plan = plans[s % plans.len()];
                let (co, peer) = loopback_pair(plan);
                spawn_loopback_service(s, peer, cfg.make_monitor(net.clone()), attribute_cells);
                let net2 = net.clone();
                let respawn: RespawnFn = Box::new(move || {
                    let (co2, peer2) = loopback_pair(FaultPlan::default());
                    if plan.respawn_dead {
                        // Stillborn respawn: no service ever serves this
                        // transport, so the next recv observes Closed and
                        // the recovery budget burns down deterministically.
                        drop(peer2);
                    } else {
                        spawn_loopback_service(
                            s,
                            peer2,
                            cfg.make_monitor(net2.clone()),
                            attribute_cells,
                        );
                    }
                    Box::new(co2)
                });
                let mut link_durability = durability.clone();
                if let Some(root) = &durability.dir {
                    link_durability.dir = Some(root.join(format!("shard-{s}")));
                }
                let epoch_dir = link_durability.dir.clone();
                let link = RemoteShard::with_durability(
                    s,
                    Box::new(co),
                    policy,
                    Some(respawn),
                    link_durability,
                )
                .unwrap_or_else(|e| panic!("shard {s}: durability dir unusable: {e}"));
                if let Some(log) = spawn_replicas(s, &net, &cfg, epoch_dir) {
                    link.attach_replog(log);
                }
                link
            })
            .collect();
        let engine = ShardedEngine::with_links(net, cfg, links).unwrap_or_else(|e| panic!("{e}"));
        Self { engine }
    }

    /// Connects to one already-listening Unix-socket shard service per
    /// path (see [`crate::service::serve_unix`]), retrying each connect
    /// for a few seconds so freshly spawned shard processes have time to
    /// bind. No respawn policy: a shard process dying is survivable only
    /// through follower promotion (replication on) or, failing that,
    /// planner takeover — there is nothing to respawn.
    pub fn connect_unix(
        net: Arc<RoadNetwork>,
        cfg: EngineConfig,
        paths: &[impl AsRef<Path>],
        policy: RetryPolicy,
    ) -> std::io::Result<Self> {
        let links = paths
            .iter()
            .enumerate()
            .map(|(s, path)| {
                let stream = connect_with_retry(|| std::os::unix::net::UnixStream::connect(path))?;
                let t: Box<dyn Transport> = Box::new(StreamTransport::new(stream));
                let link = RemoteShard::new(s, t, policy);
                // Replicas ride in the coordinator process: the shard
                // *process* dying is what failover survives.
                if let Some(log) = spawn_replicas(s, &net, &cfg, None) {
                    link.attach_replog(log);
                }
                Ok(link)
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Self::from_links(net, cfg, links)
    }

    /// Like [`Self::connect_unix`] over TCP.
    pub fn connect_tcp(
        net: Arc<RoadNetwork>,
        cfg: EngineConfig,
        addrs: &[std::net::SocketAddr],
        policy: RetryPolicy,
    ) -> std::io::Result<Self> {
        let links = addrs
            .iter()
            .enumerate()
            .map(|(s, addr)| {
                let stream = connect_with_retry(|| std::net::TcpStream::connect(addr))?;
                let t: Box<dyn Transport> = Box::new(StreamTransport::new(stream));
                let link = RemoteShard::new(s, t, policy);
                if let Some(log) = spawn_replicas(s, &net, &cfg, None) {
                    link.attach_replog(log);
                }
                Ok(link)
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Self::from_links(net, cfg, links)
    }

    fn from_links(
        net: Arc<RoadNetwork>,
        cfg: EngineConfig,
        links: Vec<RemoteShard>,
    ) -> std::io::Result<Self> {
        ShardedEngine::with_links(net, cfg, links)
            .map(|engine| Self { engine })
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))
    }

    /// The underlying routing engine (halo radii, partition, worker
    /// reports — everything the in-process engine exposes).
    pub fn engine(&self) -> &ShardedEngine<RemoteShard> {
        &self.engine
    }

    /// A producer handle onto the coordinator's ingest stage (see
    /// `rnn_engine::ingest`) — submissions queue coordinator-side and
    /// ship to the shard services at the next [`Self::tick_ingest`].
    pub fn ingest_handle(&self) -> rnn_engine::IngestHandle {
        self.engine.ingest_handle()
    }

    /// Drains the ingest stage and runs one tick over the result (see
    /// `ShardedEngine::tick_ingest`).
    pub fn tick_ingest(&mut self) -> TickReport {
        self.engine.tick_ingest()
    }

    /// Per-shard transport counters, in shard order.
    pub fn shard_stats(&self) -> Vec<TransportStats> {
        self.engine.links().iter().map(|l| l.stats()).collect()
    }

    /// Transport counters summed over all shards.
    pub fn stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for s in self.shard_stats() {
            total.merge(&s);
        }
        total
    }
}

/// Retries `connect` with a short backoff for up to ~5 s (shard
/// processes bind their sockets asynchronously).
fn connect_with_retry<S>(mut connect: impl FnMut() -> std::io::Result<S>) -> std::io::Result<S> {
    let mut last;
    let mut wait = Duration::from_millis(10);
    let mut budget = Duration::from_secs(5);
    loop {
        match connect() {
            Ok(s) => return Ok(s),
            Err(e) => last = e,
        }
        if budget.is_zero() {
            return Err(last);
        }
        let step = wait.min(budget);
        std::thread::sleep(step);
        budget = budget.saturating_sub(step);
        wait = (wait * 2).min(Duration::from_millis(250));
    }
}

impl ContinuousMonitor for ClusterEngine {
    fn name(&self) -> &'static str {
        "CLUSTER"
    }

    fn apply(&mut self, event: UpdateEvent) -> TickReport {
        self.engine.apply(event)
    }

    fn tick(&mut self, batch: &UpdateBatch) -> TickReport {
        self.engine.tick(batch)
    }

    fn result(&self, id: QueryId) -> Option<&[Neighbor]> {
        self.engine.result(id)
    }

    fn knn_dist(&self, id: QueryId) -> Option<f64> {
        self.engine.knn_dist(id)
    }

    fn query_ids(&self) -> Vec<QueryId> {
        self.engine.query_ids()
    }

    fn memory(&self) -> MemoryUsage {
        self.engine.memory()
    }

    fn active_groups(&self) -> Option<usize> {
        self.engine.active_groups()
    }

    fn shard_load_ratio(&self) -> Option<f64> {
        self.engine.shard_load_ratio()
    }

    fn drain_cell_charges(&mut self, into: &mut Vec<(EdgeId, u64)>) {
        self.engine.drain_cell_charges(into);
    }

    fn transport_stats(&self) -> Option<TransportStats> {
        Some(self.stats())
    }
}
