//! # rnn-cluster
//!
//! A shard-per-**process** deployment of the sharded continuous-monitoring
//! engine: the coordinator runs [`rnn_engine::ShardedEngine`]'s
//! route/absorb loop unchanged, but each shard's monitor sits behind a
//! small RPC layer instead of an in-process thread.
//!
//! The stack, bottom-up:
//!
//! * [`frame`] — the wire envelope: `u32 len | u16 tag | u32 seq |
//!   u32 crc | payload`, one tag per protocol message, FNV checksum over
//!   everything but the length prefix. The payloads are the engine's own
//!   delta protocol ([`rnn_engine::protocol`]) made explicit as typed
//!   frames: tick events, halo-resync events, migration hand-off,
//!   result-snapshot deltas coming back.
//! * [`transport`] — byte pipes moving whole frames: an in-process
//!   loopback pair with deterministic fault injection (delay, reorder,
//!   corruption, crash-on-cue), and a stream transport over Unix domain
//!   sockets or TCP (`std::net` + worker threads; no async runtime).
//! * [`service`] — the shard side: one monitor driven through
//!   [`rnn_engine::ShardTickState`] (so replies are bit-identical to an
//!   in-process worker's), with duplicate-request suppression by
//!   sequence number.
//! * [`client`] — the coordinator side: per-message timeout and
//!   retransmit, corrupt/stale reply filtering, and crash recovery by
//!   respawning the service and rebuilding it from the latest
//!   monitor-state snapshot plus a replay of the event-journal suffix
//!   (or the full journal when snapshots are disabled). Unrecoverable
//!   links report typed [`ClusterError`]s and go `Down` instead of
//!   panicking.
//! * [`wal`] — the per-shard write-ahead log backing the journal on
//!   disk: verbatim frame records, batched fsync, torn-tail-tolerant
//!   reopen — plus the leader-epoch sidecar file replication fences on.
//! * [`replog`] / [`replica`] — the replicated-journal plane: a
//!   leader-per-shard [`replog::ReplicatedLog`] streams every routed
//!   event frame to hot-standby [`replica::ReplicaNode`]s, commits on a
//!   configurable quorum of acks, fences stale leaders by epoch, and
//!   promotes a follower into the serving [`ShardService`] when the
//!   shard dies past its retry and respawn budgets.
//! * [`engine`] — [`ClusterEngine`], gluing a `ShardedEngine<RemoteShard>`
//!   to constructed transports and aggregating
//!   [`rnn_core::TransportStats`].
//!
//! Because monitors are deterministic and the RPC layer delivers
//! exactly-once *semantics* (at-least-once delivery + sequence-numbered
//! dedup), a `ClusterEngine` is answer-identical — bit-identical
//! snapshots and work counters — to the in-process engine, which the
//! differential suite checks under every injected fault.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod client;
pub mod engine;
pub mod error;
pub mod frame;
pub mod replica;
pub mod replog;
pub mod service;
pub mod transport;
pub mod wal;

pub use client::{
    DurabilityConfig, DurabilityConfigBuilder, DurabilityConfigError, RemoteShard, RetryPolicy,
};
pub use engine::ClusterEngine;
pub use error::ClusterError;
pub use frame::{Frame, MsgTag};
pub use replica::{MonitorFactory, ReplicaNode};
pub use replog::ReplicatedLog;
pub use service::{serve_tcp, serve_unix, ShardService};
pub use transport::{loopback_pair, FaultPlan, LoopbackTransport, RecvError, Transport};
pub use wal::Wal;
