//! Typed liveness failures of a coordinator↔shard link.
//!
//! Historically every unrecoverable transport condition was a panic in
//! the client. The panics are now confined to the *engine*'s policy
//! decision ([`rnn_engine::EngineConfig::takeover`] disabled): the link
//! itself reports the failure as a [`ClusterError`], marks itself dead,
//! and answers every subsequent request with `Response::Down`, so the
//! coordinator can hand the shard's cells to survivors instead of
//! tearing the process down.

/// Why a shard link declared its peer permanently down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// The peer never answered a request within the retry budget
    /// ([`crate::client::RetryPolicy::max_retries`] retransmits, each
    /// waited out for the policy timeout).
    Unreachable {
        /// The shard index.
        shard: usize,
        /// The sequence number of the unanswered request.
        seq: u32,
        /// Retransmits attempted before giving up.
        retries: u32,
    },
    /// The transport reported the peer gone and no respawn hook was
    /// configured, so nothing can be rebuilt.
    NoRespawn {
        /// The shard index.
        shard: usize,
    },
    /// The transport reported the peer gone and every bounded recovery
    /// attempt (respawn + snapshot install + journal replay) also failed —
    /// e.g. the respawned service died again mid-replay.
    RecoveryFailed {
        /// The shard index.
        shard: usize,
        /// Full recovery attempts made (1 + `recovery_retries`).
        attempts: u32,
    },
    /// A respawned service refused the snapshot install — its fresh
    /// monitor could not reproduce the recorded results. This indicates
    /// a determinism bug, not line noise, and is never retried past the
    /// recovery budget.
    RestoreRejected {
        /// The shard index.
        shard: usize,
    },
    /// A replica rejected this leader's frame because it has already
    /// seen a newer leadership epoch: this coordinator is a **stale
    /// leader** (e.g. restarted from a stale epoch file, or on the
    /// wrong side of a partition while a follower was promoted). Its
    /// appends are fenced — rejected, never silently merged — and the
    /// link must stop writing.
    Fenced {
        /// The shard index.
        shard: usize,
        /// This (stale) leader's epoch.
        epoch: u32,
        /// The newer epoch the replica reported.
        newer: u32,
    },
    /// The peer died and every follower replica was also dead (or
    /// refused promotion), so no hot standby could take over. The
    /// engine's planner takeover is the last-resort path from here.
    FailoverFailed {
        /// The shard index.
        shard: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Unreachable {
                shard,
                seq,
                retries,
            } => write!(
                f,
                "shard {shard}: no reply to seq {seq} after {retries} retransmits"
            ),
            ClusterError::NoRespawn { shard } => {
                write!(f, "shard {shard} died and no respawn policy is set")
            }
            ClusterError::RecoveryFailed { shard, attempts } => write!(
                f,
                "shard {shard}: recovery failed after {attempts} attempts \
                 (peer kept dying during snapshot install / journal replay)"
            ),
            ClusterError::RestoreRejected { shard } => write!(
                f,
                "shard {shard}: respawned service rejected the snapshot install"
            ),
            ClusterError::Fenced {
                shard,
                epoch,
                newer,
            } => write!(
                f,
                "shard {shard}: fenced — this leader's epoch {epoch} is stale \
                 (a replica reported epoch {newer}); appends rejected"
            ),
            ClusterError::FailoverFailed { shard } => write!(
                f,
                "shard {shard}: failover failed — no live follower replica \
                 accepted promotion"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}
