//! The coordinator side of the RPC layer: [`RemoteShard`] speaks the
//! engine's [`ShardLink`] protocol to one [`crate::service::ShardService`]
//! over any [`Transport`], adding everything the in-process worker never
//! needed — per-message timeout and retransmission, duplicate-reply
//! filtering, corrupt-frame rejection, and crash recovery by respawning
//! the service and rebuilding its monitor.
//!
//! # Recovery, bounded
//!
//! Without durability (the default) the rebuild replays the **full**
//! event journal against the respawned service's fresh monitor; the
//! monitors are deterministic, so a complete replay reconstructs
//! bit-identical shard state and the engine never notices the death.
//! With a [`DurabilityConfig`] the link additionally runs a periodic
//! snapshot cycle: every `snapshot_every` journaled event frames it
//! pulls the monitor's answer-relevant state (`rnn_core::MonitorState`)
//! over a [`MsgTag::SnapshotRequest`] round trip, then truncates the
//! journal (and the on-disk [`Wal`], when a directory is configured)
//! behind it. Recovery then costs one snapshot install plus a replay of
//! only the journal **suffix** — O(events since the last snapshot), not
//! O(run length) — which is what makes crash recovery bounded-time.
//!
//! # Replication
//!
//! With a [`ReplicatedLog`] attached ([`RemoteShard::attach_replog`])
//! the link is the **leader** of its shard's journal: every event frame
//! is streamed to the follower replicas and only *commits* — becomes
//! eligible for WAL truncation and is dispatched to the shard monitor —
//! once a quorum has acked (see [`crate::replog`]). Every frame carries
//! the leader's epoch; a fenced append (a replica at a newer epoch)
//! kills the link immediately, because a newer leader owns the shard.
//! When the shard itself dies past the retry **and** recovery budgets,
//! the link promotes a live follower instead of going dead: the
//! follower rebuilds from its own replicated log, the link adopts its
//! transport, and the in-flight request is retransmitted under the new
//! epoch — the engine never notices.
//!
//! # Liveness
//!
//! The client never panics on peer behaviour. A peer unreachable past
//! the retry budget, dead with no respawn hook, or dying repeatedly
//! through `recovery_retries` full recovery attempts — with no live
//! follower left to promote — turns the link **dead**: the failure is
//! recorded as a typed [`ClusterError`], the current and every
//! subsequent `recv` answers `Response::Down`, and sends become no-ops.
//! What happens next is the engine's policy call
//! (`rnn_engine::EngineConfig::takeover`): panic, or hand the corpse's
//! cells to surviving shards.

use std::fs::File;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use rnn_core::{MemoryUsage, MonitorState, TransportStats};
use rnn_engine::{BatchKind, Request, Response, ShardLink, TickOutcome};
use rnn_roadnet::{WireCodec, WireReader};

use crate::error::ClusterError;
use crate::frame::{Frame, MsgTag};
use crate::replog::{ReplicatedLog, REPLAY_ALL};
use crate::transport::{RecvError, Transport};
use crate::wal::Wal;

/// Per-message delivery policy.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// How long to wait for a reply before retransmitting the request.
    pub timeout: Duration,
    /// Retransmits allowed per request before the shard is declared
    /// permanently unreachable (the link goes dead and reports
    /// `Response::Down`; the engine decides whether that is fatal).
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(1),
            max_retries: 8,
        }
    }
}

/// The durability plane of one shard link. The default (`snapshot_every
/// = 0`, no directory) disables all of it and keeps the historical
/// full-journal behaviour bit-for-bit.
#[derive(Clone, Debug, Default)]
pub struct DurabilityConfig {
    /// Run a snapshot cycle once the journal holds this many event
    /// frames: capture the monitor's state over RPC, then truncate the
    /// journal (and WAL) behind it, bounding recovery replay to the
    /// suffix. `0` disables snapshots entirely.
    pub snapshot_every: u32,
    /// Directory for the on-disk durability artifacts — `events.wal`
    /// (the event journal, torn-tail tolerant; see [`crate::wal`]) and
    /// `snapshot.bin` (the latest snapshot, written tmp+fsync+rename).
    /// `None` keeps the journal and snapshot in memory only: shard-crash
    /// recovery still works (the coordinator survives), but nothing
    /// outlives the coordinator process.
    pub dir: Option<PathBuf>,
    /// WAL fsync batching: sync the log once per this many appends
    /// (0 is treated as 1 — sync every append).
    pub fsync_every: u32,
    /// Extra full recovery attempts (respawn + snapshot install +
    /// suffix replay) after the first one fails before the link is
    /// declared dead.
    pub recovery_retries: u32,
}

impl DurabilityConfig {
    /// Snapshots every `snapshot_every` events, in-memory only, with two
    /// recovery retries — the configuration the tests and benchmarks use
    /// unless they need the on-disk artifacts.
    pub fn in_memory(snapshot_every: u32) -> Self {
        Self {
            snapshot_every,
            dir: None,
            fsync_every: 1,
            recovery_retries: 2,
        }
    }

    /// Like [`Self::in_memory`] but persisting the WAL and snapshots
    /// under `dir`.
    pub fn on_disk(snapshot_every: u32, dir: PathBuf) -> Self {
        Self {
            snapshot_every,
            dir: Some(dir),
            fsync_every: 1,
            recovery_retries: 2,
        }
    }

    /// A validating builder (mirroring `EngineConfig::builder`): knob
    /// mistakes surface as a typed [`DurabilityConfigError`] at
    /// [`DurabilityConfigBuilder::build`] instead of being silently
    /// papered over (a literal `fsync_every: 0` is quietly treated as 1).
    pub fn builder() -> DurabilityConfigBuilder {
        DurabilityConfigBuilder {
            cfg: Self {
                fsync_every: 1,
                recovery_retries: 2,
                ..Self::default()
            },
        }
    }
}

/// Why a [`DurabilityConfig::builder`] configuration was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DurabilityConfigError {
    /// `fsync_every` was 0. The raw struct treats 0 as "sync every
    /// append" for backwards compatibility; the builder rejects it so a
    /// miscomputed batch size fails loudly instead of silently running
    /// at the slowest possible setting.
    ZeroFsyncBatch,
}

impl std::fmt::Display for DurabilityConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityConfigError::ZeroFsyncBatch => write!(
                f,
                "DurabilityConfig::fsync_every must be at least 1 \
                 (1 = sync every append)"
            ),
        }
    }
}

impl std::error::Error for DurabilityConfigError {}

/// Builder for [`DurabilityConfig`]; see [`DurabilityConfig::builder`].
#[derive(Clone, Debug)]
pub struct DurabilityConfigBuilder {
    cfg: DurabilityConfig,
}

impl DurabilityConfigBuilder {
    /// Sets the snapshot cadence, in journaled event frames (0 disables
    /// snapshots).
    pub fn snapshot_every(mut self, frames: u32) -> Self {
        self.cfg.snapshot_every = frames;
        self
    }

    /// Persists the WAL and snapshots under `dir`.
    pub fn dir(mut self, dir: PathBuf) -> Self {
        self.cfg.dir = Some(dir);
        self
    }

    /// Sets the WAL fsync batch size (validated to `>= 1` at build).
    pub fn fsync_every(mut self, appends: u32) -> Self {
        self.cfg.fsync_every = appends;
        self
    }

    /// Sets the extra full recovery attempts after the first failure.
    pub fn recovery_retries(mut self, retries: u32) -> Self {
        self.cfg.recovery_retries = retries;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<DurabilityConfig, DurabilityConfigError> {
        if self.cfg.fsync_every == 0 {
            return Err(DurabilityConfigError::ZeroFsyncBatch);
        }
        Ok(self.cfg)
    }
}

/// Builds a replacement transport to a *freshly spawned* service (new
/// process / thread, new monitor) after a crash.
pub type RespawnFn = Box<dyn FnMut() -> Box<dyn Transport> + Send>;

struct Inflight {
    bytes: Vec<u8>,
    seq: u32,
    tag: MsgTag,
}

/// Why one rebuild attempt against a respawned service did not finish.
enum RebuildError {
    /// The fresh peer died too; another respawn may still succeed.
    PeerDied,
    /// A failure retrying cannot fix (snapshot install rejected).
    Fatal(ClusterError),
}

struct Inner {
    shard: usize,
    transport: Box<dyn Transport>,
    policy: RetryPolicy,
    durability: DurabilityConfig,
    next_seq: u32,
    inflight: Option<Inflight>,
    /// Event frames sent since the last durable snapshot, in order, with
    /// their sequence numbers. This is the recovery suffix: replayed
    /// against a respawned service after its snapshot install (or in
    /// full, from seq 0, when snapshots are disabled). Memory requests
    /// are read-only and are simply retransmitted, never journaled.
    journal: Vec<(u32, Vec<u8>)>,
    /// Disk image of the journal (present when `durability.dir` is set).
    wal: Option<Wal>,
    /// Latest monitor-state snapshot: the sequence number it covers and
    /// the encoded `MonitorState` payload.
    snapshot: Option<(u32, Vec<u8>)>,
    /// Cleared when the shard's monitor answers a snapshot request with
    /// an empty payload (snapshots unsupported) — the cycle then stays
    /// off and recovery falls back to full replay.
    snapshots_supported: bool,
    /// Set once the link has given up on its peer; `recv` then answers
    /// `Response::Down` forever and sends are dropped.
    dead: bool,
    /// The typed failure that killed the link.
    last_error: Option<ClusterError>,
    respawn: Option<RespawnFn>,
    /// Leadership epoch stamped into every outbound frame. 0 until a
    /// [`ReplicatedLog`] is attached; bumped by each failover.
    epoch: u32,
    /// The shard's replicated journal, when replication is enabled.
    replog: Option<ReplicatedLog>,
    stats: TransportStats,
}

/// A [`ShardLink`] to one shard service behind a [`Transport`].
pub struct RemoteShard {
    inner: Mutex<Inner>,
}

impl RemoteShard {
    /// A link with no crash recovery: the peer dying kills the link.
    pub fn new(shard: usize, transport: Box<dyn Transport>, policy: RetryPolicy) -> Self {
        Self::build(shard, transport, policy, None, DurabilityConfig::default())
    }

    /// A link that, when the peer dies, calls `respawn` for a transport
    /// to a fresh service and rebuilds it by journal replay.
    pub fn with_respawn(
        shard: usize,
        transport: Box<dyn Transport>,
        policy: RetryPolicy,
        respawn: RespawnFn,
    ) -> Self {
        Self::build(
            shard,
            transport,
            policy,
            Some(respawn),
            DurabilityConfig::default(),
        )
    }

    /// A link with the full durability plane: periodic snapshots with
    /// journal/WAL truncation, bounded-suffix recovery, and (when
    /// `durability.dir` is set) on-disk artifacts that seed the journal
    /// and snapshot back in on construction — a restarted coordinator
    /// resumes from what was durable, minus any torn WAL tail.
    pub fn with_durability(
        shard: usize,
        transport: Box<dyn Transport>,
        policy: RetryPolicy,
        respawn: Option<RespawnFn>,
        durability: DurabilityConfig,
    ) -> std::io::Result<Self> {
        let mut snapshot = None;
        let mut journal = Vec::new();
        let mut wal = None;
        if let Some(dir) = &durability.dir {
            std::fs::create_dir_all(dir)?;
            snapshot = load_snapshot(&dir.join("snapshot.bin"));
            let (log, recovered) = Wal::open(&dir.join("events.wal"), durability.fsync_every)?;
            // A crash between snapshot rename and WAL reset can leave
            // already-covered records in the log; recovery must replay
            // only the suffix past the snapshot.
            let covered = snapshot.as_ref().map(|(seq, _)| *seq);
            journal = recovered
                .into_iter()
                .filter(|(seq, _)| !covered.is_some_and(|c| *seq <= c))
                .collect();
            wal = Some(log);
        }
        let next_seq = journal
            .iter()
            .map(|(seq, _)| *seq)
            .chain(snapshot.iter().map(|(seq, _)| *seq))
            .max()
            .map_or(0, |m| m + 1);
        Ok(Self {
            inner: Mutex::new(Inner {
                shard,
                transport,
                policy,
                durability,
                next_seq,
                inflight: None,
                journal,
                wal,
                snapshot,
                snapshots_supported: true,
                dead: false,
                last_error: None,
                respawn,
                epoch: 0,
                replog: None,
                stats: TransportStats::default(),
            }),
        })
    }

    fn build(
        shard: usize,
        transport: Box<dyn Transport>,
        policy: RetryPolicy,
        respawn: Option<RespawnFn>,
        durability: DurabilityConfig,
    ) -> Self {
        debug_assert!(durability.dir.is_none());
        match Self::with_durability(shard, transport, policy, respawn, durability) {
            Ok(link) => link,
            // lint: allow(panic-free-wire): unreachable — without a durability dir no I/O runs, so construction cannot fail
            Err(e) => panic!("shard {shard}: link construction failed without disk I/O: {e}"),
        }
    }

    /// Cumulative transport counters for this link. The durability
    /// gauges (`journal_len`, `wal_bytes`, `snapshot_bytes`) are
    /// computed from the live state at call time.
    pub fn stats(&self) -> TransportStats {
        // lint: allow(panic-free-wire): lock poisoning is a local crash already in progress, not network input
        let g = self.inner.lock().expect("link lock");
        let mut stats = g.stats;
        stats.journal_len = g.journal.len() as u64;
        stats.wal_bytes = g.wal.as_ref().map_or(0, Wal::bytes);
        stats.snapshot_bytes = g.snapshot.as_ref().map_or(0, |(_, p)| p.len() as u64);
        stats
    }

    /// The typed failure that killed this link, if it is dead.
    pub fn last_error(&self) -> Option<ClusterError> {
        // lint: allow(panic-free-wire): lock poisoning is a local crash already in progress, not network input
        self.inner.lock().expect("link lock").last_error
    }

    /// Attaches the shard's replicated journal, making this link its
    /// leader: subsequent event frames are quorum-committed to the
    /// log's followers before dispatch, and a dead shard promotes a
    /// follower instead of killing the link. The link adopts the log's
    /// epoch (a restarted coordinator resumes its persisted term).
    pub fn attach_replog(&self, log: ReplicatedLog) {
        // lint: allow(panic-free-wire): lock poisoning is a local crash already in progress, not network input
        let mut g = self.inner.lock().expect("link lock");
        g.epoch = log.epoch();
        g.replog = Some(log);
    }

    /// The link's current leadership epoch (0 without replication).
    pub fn epoch(&self) -> u32 {
        // lint: allow(panic-free-wire): lock poisoning is a local crash already in progress, not network input
        self.inner.lock().expect("link lock").epoch
    }
}

/// Reads and validates a persisted snapshot file (one encoded
/// [`MsgTag::SnapshotReply`] frame): `(covered_seq, state_payload)`.
/// Any unreadable, torn, or mistagged file is treated as absent.
fn load_snapshot(path: &std::path::Path) -> Option<(u32, Vec<u8>)> {
    let bytes = std::fs::read(path).ok()?;
    let frame = Frame::from_bytes(&bytes).ok()?;
    (frame.tag == MsgTag::SnapshotReply).then_some((frame.seq, frame.payload))
}

impl ShardLink for RemoteShard {
    fn send(&self, req: Request) {
        // lint: allow(panic-free-wire): lock poisoning is a local crash already in progress, not network input
        let mut g = self.inner.lock().expect("link lock");
        if g.dead {
            return; // a corpse accepts nothing; recv answers Down
        }
        g.send_req(req);
    }

    fn recv(&self) -> Response {
        // lint: allow(panic-free-wire): lock poisoning is a local crash already in progress, not network input
        let mut g = self.inner.lock().expect("link lock");
        if g.dead {
            return Response::Down;
        }
        // lint: allow(panic-free-wire): ShardLink contract violation by the local engine (recv without send), not network input
        let mut inflight = g.inflight.take().expect("a request is outstanding");
        g.exchange(&mut inflight)
    }
}

impl Drop for RemoteShard {
    fn drop(&mut self) {
        if let Ok(mut g) = self.inner.lock() {
            if g.dead {
                return;
            }
            // Sent twice deliberately: with injected faults one shutdown
            // frame can be corrupted or held back by a reordering
            // transport, and the second send flushes/replaces it. The
            // service exits on the first intact copy; a duplicate
            // arriving after exit is dropped with the connection.
            g.send_req(Request::Shutdown);
            g.send_req(Request::Shutdown);
        }
    }
}

impl Inner {
    fn send_req(&mut self, req: Request) {
        let mut payload = Vec::new();
        let tag = match req {
            Request::Tick(delta) => {
                delta.encode(&mut payload);
                match delta.kind {
                    BatchKind::Tick => MsgTag::TickEvents,
                    BatchKind::Resync => MsgTag::ResyncEvents,
                    BatchKind::Migration => MsgTag::MigrationEvents,
                }
            }
            Request::Memory => MsgTag::MemoryRequest,
            Request::Snapshot => MsgTag::SnapshotRequest,
            Request::Restore(state) => {
                payload = state.to_bytes();
                MsgTag::SnapshotInstall
            }
            Request::Shutdown => MsgTag::Shutdown,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let bytes = Frame {
            tag,
            seq,
            epoch: self.epoch,
            payload,
        }
        .to_bytes();
        if tag.is_events() {
            self.journal.push((seq, bytes.clone()));
            if let Some(wal) = &mut self.wal {
                // An append failure (disk full, dead mount) degrades
                // durability, not correctness: the in-memory journal
                // still covers shard-crash recovery.
                let _ = wal.append(&bytes);
            }
            // Commit-before-dispatch: the event must be quorum-acked by
            // the follower replicas before it feeds the shard monitor.
            // A fenced append means a newer leader owns this shard —
            // the link dies instead of merging stale writes.
            if let Some(log) = &mut self.replog {
                if let Err(e) = log.append(seq, &bytes, &mut self.stats) {
                    self.dead = true;
                    self.last_error = Some(e);
                    return;
                }
            }
        }
        self.transmit(&bytes);
        if tag != MsgTag::Shutdown {
            self.inflight = Some(Inflight { bytes, seq, tag });
        }
    }

    fn transmit(&mut self, bytes: &[u8]) {
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        // A send to a dead peer is fine: the failure surfaces on recv,
        // where the crash-recovery path owns it.
        let _ = self.transport.send(bytes);
    }

    /// Waits out the reply to `inflight` and decodes it; on an
    /// unrecoverable liveness failure the link goes dead and the engine
    /// sees `Response::Down`. (`inflight` is mutable because a failover
    /// re-stamps its bytes with the new leadership epoch.)
    fn exchange(&mut self, inflight: &mut Inflight) -> Response {
        match self.exchange_inner(inflight) {
            Ok(resp) => resp,
            Err(err) => {
                self.dead = true;
                self.last_error = Some(err);
                self.inflight = None;
                Response::Down
            }
        }
    }

    /// Drives retransmits, stale- and corrupt-frame filtering, and crash
    /// recovery until the matching reply decodes. A frame whose checksum
    /// passes but whose payload fails to decode (or whose tag makes no
    /// sense as a reply) is treated exactly like a corrupt frame:
    /// counted, dropped, and the request retransmitted — the service
    /// answers a retransmit from its cached-reply store, so a healthy
    /// peer converges in one round trip. After an acknowledged event
    /// frame the snapshot cycle may run (see the module docs).
    fn exchange_inner(&mut self, inflight: &mut Inflight) -> Result<Response, ClusterError> {
        let mut attempts = 0u32;
        loop {
            match self.transport.recv_timeout(self.policy.timeout) {
                Ok(bytes) => {
                    self.stats.frames_received += 1;
                    self.stats.bytes_received += bytes.len() as u64;
                    match Frame::from_bytes(&bytes) {
                        Ok(f) if f.seq == inflight.seq => match decode_reply(&f) {
                            Some(resp) => {
                                if inflight.tag.is_events() {
                                    self.maybe_snapshot(inflight.seq);
                                }
                                return Ok(resp);
                            }
                            None => {
                                self.stats.corrupt_frames += 1;
                                self.retransmit(inflight, &mut attempts)?;
                            }
                        },
                        // A reply to an older request: a retransmission
                        // echo we stopped waiting for. Drop it.
                        Ok(_) => continue,
                        Err(_) => {
                            self.stats.corrupt_frames += 1;
                            self.retransmit(inflight, &mut attempts)?;
                        }
                    }
                }
                Err(RecvError::Timeout) => self.retransmit(inflight, &mut attempts)?,
                Err(RecvError::Closed) | Err(RecvError::Io) => self.recover(inflight)?,
            }
        }
    }

    fn retransmit(
        &mut self,
        inflight: &mut Inflight,
        attempts: &mut u32,
    ) -> Result<(), ClusterError> {
        *attempts += 1;
        if *attempts > self.policy.max_retries {
            // Declared liveness policy: a shard unreachable past the
            // retry budget is down (RetryPolicy docs). With replication
            // this is also the failure detector's asymmetric-failure
            // signal (e.g. a one-way partition: requests black-holed,
            // nothing reads as closed), so failover gets a shot at
            // promoting a follower before the typed error surfaces —
            // the engine owns the fatality decision after that.
            let err = ClusterError::Unreachable {
                shard: self.shard,
                seq: inflight.seq,
                retries: self.policy.max_retries,
            };
            self.failover(inflight, err)?;
            *attempts = 0; // the promoted follower gets a fresh budget
            return Ok(());
        }
        self.stats.retries += 1;
        let bytes = inflight.bytes.clone();
        self.transmit(&bytes);
        Ok(())
    }

    // --- Snapshot cycle ---------------------------------------------------

    /// After an acknowledged event frame: if the journal has reached the
    /// snapshot threshold, pull the monitor's state and truncate the
    /// journal/WAL behind it. Strictly best-effort — any failure leaves
    /// the journal intact (recovery still replays everything it needs)
    /// and the next acknowledged event retries.
    fn maybe_snapshot(&mut self, covered_seq: u32) {
        if self.durability.snapshot_every == 0
            || !self.snapshots_supported
            || (self.journal.len() as u32) < self.durability.snapshot_every
        {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let request = Frame {
            tag: MsgTag::SnapshotRequest,
            seq,
            epoch: self.epoch,
            payload: Vec::new(),
        }
        .to_bytes();
        self.transmit(&request);
        let Some(payload) = self.await_snapshot_reply(seq, &request) else {
            return;
        };
        if payload.is_empty() {
            // The monitor cannot snapshot (no `snapshot_state` impl):
            // stop asking; recovery falls back to full journal replay.
            self.snapshots_supported = false;
            return;
        }
        // Truncate-behind-commit: with replication attached, the WAL
        // may only drop events a quorum of followers has acked — else a
        // promoted follower could need history nobody holds any more.
        // The synchronous append pipeline makes the commit index cover
        // `covered_seq` by construction; this guard keeps the invariant
        // explicit (and load-bearing if the pipeline ever loosens).
        if let Some(log) = &self.replog {
            let committed =
                log.commit_seq().is_some_and(|c| c >= covered_seq) || log.live_followers() == 0;
            if !committed {
                return;
            }
        }
        // Durable order: snapshot first, truncate after. If persistence
        // fails the journal is kept, so the on-disk artifacts never get
        // ahead of what recovery can actually replay.
        if self.persist_snapshot(covered_seq, &payload).is_err() {
            return;
        }
        // Followers truncate their own logs behind the same snapshot,
        // keeping replica memory bounded by the snapshot cadence too.
        if let Some(log) = &mut self.replog {
            log.offer_snapshot(covered_seq, &payload, &mut self.stats);
        }
        self.stats.snapshots += 1;
        self.snapshot = Some((covered_seq, payload));
        self.journal.clear();
        if let Some(wal) = &mut self.wal {
            let _ = wal.reset();
        }
    }

    /// Waits out the reply to one snapshot request. `None` on any
    /// failure (timeout budget spent, peer closed): the cycle is
    /// abandoned and a real death surfaces on the next event exchange,
    /// where the recovery path owns it.
    fn await_snapshot_reply(&mut self, seq: u32, request: &[u8]) -> Option<Vec<u8>> {
        let mut attempts = 0u32;
        loop {
            match self.transport.recv_timeout(self.policy.timeout) {
                Ok(bytes) => {
                    self.stats.frames_received += 1;
                    self.stats.bytes_received += bytes.len() as u64;
                    match Frame::from_bytes(&bytes) {
                        Ok(f) if f.seq == seq && f.tag == MsgTag::SnapshotReply => {
                            return Some(f.payload)
                        }
                        Ok(f) if f.seq == seq => {
                            // Right seq, wrong tag: treat as corruption.
                            self.stats.corrupt_frames += 1;
                            attempts += 1;
                            if attempts > self.policy.max_retries {
                                return None;
                            }
                            self.stats.retries += 1;
                            let req = request.to_vec();
                            self.transmit(&req);
                        }
                        Ok(_) => continue, // stale echo
                        Err(_) => {
                            self.stats.corrupt_frames += 1;
                            attempts += 1;
                            if attempts > self.policy.max_retries {
                                return None;
                            }
                            self.stats.retries += 1;
                            let req = request.to_vec();
                            self.transmit(&req);
                        }
                    }
                }
                Err(RecvError::Timeout) => {
                    attempts += 1;
                    if attempts > self.policy.max_retries {
                        return None;
                    }
                    self.stats.retries += 1;
                    let req = request.to_vec();
                    self.transmit(&req);
                }
                Err(RecvError::Closed) | Err(RecvError::Io) => return None,
            }
        }
    }

    /// Persists the snapshot as one self-checksummed frame, written to a
    /// temp file, synced, and renamed into place — a crash leaves either
    /// the old snapshot or the new one, never a torn file.
    fn persist_snapshot(&mut self, covered_seq: u32, payload: &[u8]) -> std::io::Result<()> {
        let Some(dir) = &self.durability.dir else {
            return Ok(());
        };
        let bytes = Frame {
            tag: MsgTag::SnapshotReply,
            seq: covered_seq,
            epoch: self.epoch,
            payload: payload.to_vec(),
        }
        .to_bytes();
        let tmp = dir.join("snapshot.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(&tmp, dir.join("snapshot.bin"))
    }

    // --- Crash recovery ---------------------------------------------------

    /// The peer is gone: first try the PR-8 respawn path (fresh service,
    /// snapshot install + journal replay), and if that is unavailable or
    /// exhausted, promote a follower replica ([`Self::failover`]). Only
    /// when both fail does the typed error surface and the link die —
    /// at which point the engine's planner takeover is the last resort.
    fn recover(&mut self, inflight: &mut Inflight) -> Result<(), ClusterError> {
        match self.recover_by_respawn(inflight) {
            Ok(()) => Ok(()),
            Err(e) => self.failover(inflight, e),
        }
    }

    /// Respawns a fresh service and rebuilds its monitor — snapshot
    /// install (when one is held) plus a replay of the journal suffix;
    /// deterministic monitors make the result bit-identical to the lost
    /// state. The whole rebuild is retried up to `1 + recovery_retries`
    /// times against fresh respawns before giving up.
    fn recover_by_respawn(&mut self, inflight: &Inflight) -> Result<(), ClusterError> {
        if self.respawn.is_none() {
            return Err(ClusterError::NoRespawn { shard: self.shard });
        }
        let budget = 1 + self.durability.recovery_retries;
        for _attempt in 0..budget {
            self.stats.crash_recoveries += 1;
            if let Some(respawn) = self.respawn.as_mut() {
                self.transport = respawn();
            }
            match self.rebuild(inflight) {
                Ok(()) => return Ok(()),
                Err(RebuildError::Fatal(e)) => return Err(e),
                Err(RebuildError::PeerDied) => continue,
            }
        }
        Err(ClusterError::RecoveryFailed {
            shard: self.shard,
            attempts: budget,
        })
    }

    /// Promotes a live follower replica to serving leader for this
    /// shard. The follower rebuilds shard state from its *own*
    /// replicated log (snapshot + committed suffix, replayed locally —
    /// see [`crate::replica`]); the link then adopts the follower's
    /// transport, re-stamps the in-flight request with the bumped epoch
    /// (so the promoted service does not fence its own coordinator),
    /// and retransmits it. Without a replog — or with no live follower
    /// — the original failure `fallback` passes through; a fenced
    /// promotion (another leader already took over) supersedes it.
    fn failover(
        &mut self,
        inflight: &mut Inflight,
        fallback: ClusterError,
    ) -> Result<(), ClusterError> {
        let Some(log) = self.replog.as_mut() else {
            return Err(fallback);
        };
        if log.live_followers() == 0 {
            return Err(fallback);
        }
        // The in-flight event frame is already in every follower's log,
        // but it must NOT be replayed during promotion: the coordinator
        // still owns its delivery and retransmits it afterwards, so the
        // promoted service processes it exactly once, fresh.
        let boundary = if inflight.tag.is_events() {
            inflight.seq
        } else {
            REPLAY_ALL
        };
        let transport = log
            .promote(boundary, &mut self.stats)
            .map_err(|e| match e {
                fenced @ ClusterError::Fenced { .. } => fenced,
                _ => fallback,
            })?;
        self.transport = transport;
        self.epoch = self
            .replog
            .as_ref()
            .map_or(self.epoch, ReplicatedLog::epoch);
        if let Ok(mut frame) = Frame::from_bytes(&inflight.bytes) {
            frame.epoch = self.epoch;
            inflight.bytes = frame.to_bytes();
        }
        let bytes = inflight.bytes.clone();
        self.transmit(&bytes);
        Ok(())
    }

    /// One rebuild attempt against a freshly respawned service. The
    /// journal's last entry is the inflight request itself when that
    /// request is an event batch — its reply is left for
    /// [`Self::exchange_inner`] to consume.
    fn rebuild(&mut self, inflight: &Inflight) -> Result<(), RebuildError> {
        if let Some((covered_seq, state)) = self.snapshot.clone() {
            // The install carries the *covered* sequence number, so the
            // service's duplicate filter accepts exactly the suffix
            // (seq > covered_seq) replayed after it.
            let install = Frame {
                tag: MsgTag::SnapshotInstall,
                seq: covered_seq,
                epoch: self.epoch,
                payload: state,
            }
            .to_bytes();
            self.transmit(&install);
            if !self.await_restore_reply(covered_seq, &install)? {
                return Err(RebuildError::Fatal(ClusterError::RestoreRejected {
                    shard: self.shard,
                }));
            }
        }
        let journal = std::mem::take(&mut self.journal);
        let mut outcome = Ok(());
        for (seq, bytes) in &journal {
            self.stats.frames_sent += 1;
            self.stats.bytes_sent += bytes.len() as u64;
            self.stats.frames_replayed += 1;
            let _ = self.transport.send(bytes);
            if *seq == inflight.seq {
                break; // exchange consumes this reply
            }
            if let Err(e) = self.drain_replay_reply(*seq, bytes) {
                outcome = Err(e);
                break;
            }
        }
        self.journal = journal;
        outcome?;
        if !inflight.tag.is_events() {
            // A read-only request (Memory) was in flight: retransmit it
            // now that the rebuilt shard is caught up.
            let bytes = inflight.bytes.clone();
            self.transmit(&bytes);
        }
        Ok(())
    }

    /// Waits out the reply to a snapshot install: `Ok(true)` on `[1]`,
    /// `Ok(false)` on an explicit rejection, `PeerDied` if the fresh
    /// peer stalls past the retry budget or closes.
    fn await_restore_reply(&mut self, seq: u32, install: &[u8]) -> Result<bool, RebuildError> {
        let mut attempts = 0u32;
        loop {
            match self.transport.recv_timeout(self.policy.timeout) {
                Ok(bytes) => {
                    self.stats.frames_received += 1;
                    self.stats.bytes_received += bytes.len() as u64;
                    match Frame::from_bytes(&bytes) {
                        Ok(f) if f.seq == seq && f.tag == MsgTag::RestoreReply => {
                            return Ok(f.payload == [1]);
                        }
                        Ok(f) if f.seq == seq => {
                            // A stale pre-crash reply can carry this seq
                            // (it was an event seq once); drop it.
                            continue;
                        }
                        Ok(_) => continue,
                        Err(_) => {
                            self.stats.corrupt_frames += 1;
                            self.resend_or_die(install, &mut attempts)?;
                        }
                    }
                }
                Err(RecvError::Timeout) => self.resend_or_die(install, &mut attempts)?,
                Err(RecvError::Closed) | Err(RecvError::Io) => return Err(RebuildError::PeerDied),
            }
        }
    }

    /// Consumes (and discards) the reply to one replayed journal frame.
    fn drain_replay_reply(&mut self, seq: u32, bytes: &[u8]) -> Result<(), RebuildError> {
        let mut attempts = 0u32;
        loop {
            match self.transport.recv_timeout(self.policy.timeout) {
                Ok(reply) => {
                    self.stats.frames_received += 1;
                    self.stats.bytes_received += reply.len() as u64;
                    match Frame::from_bytes(&reply) {
                        Ok(f) if f.seq == seq => return Ok(()),
                        Ok(_) => continue,
                        Err(_) => self.stats.corrupt_frames += 1,
                    }
                }
                Err(RecvError::Timeout) => self.resend_or_die(bytes, &mut attempts)?,
                // The fresh peer died mid-replay: this attempt is spent;
                // the recovery loop decides whether another respawn is
                // in budget.
                Err(RecvError::Closed) | Err(RecvError::Io) => return Err(RebuildError::PeerDied),
            }
        }
    }

    /// Shared retransmit-with-budget step of the rebuild paths: resends
    /// `bytes`, or reports the fresh peer as dead once the per-message
    /// retry budget is spent.
    fn resend_or_die(&mut self, bytes: &[u8], attempts: &mut u32) -> Result<(), RebuildError> {
        *attempts += 1;
        if *attempts > self.policy.max_retries {
            return Err(RebuildError::PeerDied);
        }
        self.stats.retries += 1;
        let copy = bytes.to_vec();
        self.transmit(&copy);
        Ok(())
    }
}

/// Decodes a reply frame's payload by its tag; `None` for a payload that
/// does not decode or a tag that is not a reply — both are handled as
/// corruption by the caller, never as a panic.
fn decode_reply(frame: &Frame) -> Option<Response> {
    let mut r = WireReader::new(&frame.payload);
    match frame.tag {
        MsgTag::TickReply => TickOutcome::decode(&mut r).ok().map(Response::Tick),
        MsgTag::MemoryReply => MemoryUsage::decode(&mut r).ok().map(Response::Memory),
        MsgTag::RestoreReply => match frame.payload.as_slice() {
            [1] => Some(Response::Restored(true)),
            [0] => Some(Response::Restored(false)),
            _ => None,
        },
        MsgTag::SnapshotReply => {
            if frame.payload.is_empty() {
                Some(Response::Snapshot(None))
            } else {
                MonitorState::from_bytes(&frame.payload)
                    .ok()
                    .map(|s| Response::Snapshot(Some(Box::new(s))))
            }
        }
        _ => None,
    }
}
