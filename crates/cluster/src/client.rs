//! The coordinator side of the RPC layer: [`RemoteShard`] speaks the
//! engine's [`ShardLink`] protocol to one [`crate::service::ShardService`]
//! over any [`Transport`], adding everything the in-process worker never
//! needed — per-message timeout and retransmission, duplicate-reply
//! filtering, corrupt-frame rejection, and crash recovery by respawning
//! the service and replaying the full event journal against its fresh
//! monitor (the monitors are deterministic, so a complete replay rebuilds
//! bit-identical shard state and the engine never notices the death).

use std::sync::Mutex;
use std::time::Duration;

use rnn_core::{MemoryUsage, TransportStats};
use rnn_engine::{BatchKind, Request, Response, ShardLink, TickOutcome};
use rnn_roadnet::{WireCodec, WireReader};

use crate::frame::{Frame, MsgTag};
use crate::transport::{RecvError, Transport};

/// Per-message delivery policy.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// How long to wait for a reply before retransmitting the request.
    pub timeout: Duration,
    /// Retransmits allowed per request before the shard is declared
    /// unreachable (a panic — the engine has no degraded mode: a lost
    /// shard means lost answers).
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(1),
            max_retries: 8,
        }
    }
}

/// Builds a replacement transport to a *freshly spawned* service (new
/// process / thread, new monitor) after a crash.
pub type RespawnFn = Box<dyn FnMut() -> Box<dyn Transport> + Send>;

struct Inflight {
    bytes: Vec<u8>,
    seq: u32,
    tag: MsgTag,
}

struct Inner {
    shard: usize,
    transport: Box<dyn Transport>,
    policy: RetryPolicy,
    next_seq: u32,
    inflight: Option<Inflight>,
    /// Every event frame ever sent, in order, with its sequence number.
    /// This is the recovery state: replayed in full against a respawned
    /// service's fresh monitor. Memory requests are read-only and are
    /// simply retransmitted, never journaled.
    journal: Vec<(u32, Vec<u8>)>,
    respawn: Option<RespawnFn>,
    stats: TransportStats,
}

/// A [`ShardLink`] to one shard service behind a [`Transport`].
pub struct RemoteShard {
    inner: Mutex<Inner>,
}

impl RemoteShard {
    /// A link with no crash recovery: the peer dying is fatal.
    pub fn new(shard: usize, transport: Box<dyn Transport>, policy: RetryPolicy) -> Self {
        Self::build(shard, transport, policy, None)
    }

    /// A link that, when the peer dies, calls `respawn` for a transport
    /// to a fresh service and replays the journal into it.
    pub fn with_respawn(
        shard: usize,
        transport: Box<dyn Transport>,
        policy: RetryPolicy,
        respawn: RespawnFn,
    ) -> Self {
        Self::build(shard, transport, policy, Some(respawn))
    }

    fn build(
        shard: usize,
        transport: Box<dyn Transport>,
        policy: RetryPolicy,
        respawn: Option<RespawnFn>,
    ) -> Self {
        Self {
            inner: Mutex::new(Inner {
                shard,
                transport,
                policy,
                next_seq: 0,
                inflight: None,
                journal: Vec::new(),
                respawn,
                stats: TransportStats::default(),
            }),
        }
    }

    /// Cumulative transport counters for this link.
    pub fn stats(&self) -> TransportStats {
        // lint: allow(panic-free-wire): lock poisoning is a local crash already in progress, not network input
        self.inner.lock().expect("link lock").stats
    }
}

impl ShardLink for RemoteShard {
    fn send(&self, req: Request) {
        // lint: allow(panic-free-wire): lock poisoning is a local crash already in progress, not network input
        self.inner.lock().expect("link lock").send_req(req);
    }

    fn recv(&self) -> Response {
        // lint: allow(panic-free-wire): lock poisoning is a local crash already in progress, not network input
        let mut g = self.inner.lock().expect("link lock");
        // lint: allow(panic-free-wire): ShardLink contract violation by the local engine (recv without send), not network input
        let inflight = g.inflight.take().expect("a request is outstanding");
        g.exchange(&inflight)
    }
}

impl Drop for RemoteShard {
    fn drop(&mut self) {
        if let Ok(mut g) = self.inner.lock() {
            // Sent twice deliberately: with injected faults one shutdown
            // frame can be corrupted or held back by a reordering
            // transport, and the second send flushes/replaces it. The
            // service exits on the first intact copy; a duplicate
            // arriving after exit is dropped with the connection.
            g.send_req(Request::Shutdown);
            g.send_req(Request::Shutdown);
        }
    }
}

impl Inner {
    fn send_req(&mut self, req: Request) {
        let mut payload = Vec::new();
        let tag = match req {
            Request::Tick(delta) => {
                delta.encode(&mut payload);
                match delta.kind {
                    BatchKind::Tick => MsgTag::TickEvents,
                    BatchKind::Resync => MsgTag::ResyncEvents,
                    BatchKind::Migration => MsgTag::MigrationEvents,
                }
            }
            Request::Memory => MsgTag::MemoryRequest,
            Request::Shutdown => MsgTag::Shutdown,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let bytes = Frame { tag, seq, payload }.to_bytes();
        if tag.is_events() {
            self.journal.push((seq, bytes.clone()));
        }
        self.transmit(&bytes);
        if tag != MsgTag::Shutdown {
            self.inflight = Some(Inflight { bytes, seq, tag });
        }
    }

    fn transmit(&mut self, bytes: &[u8]) {
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += bytes.len() as u64;
        // A send to a dead peer is fine: the failure surfaces on recv,
        // where the crash-recovery path owns it.
        let _ = self.transport.send(bytes);
    }

    /// Waits out the reply to `inflight`, driving retransmits, stale- and
    /// corrupt-frame filtering, and crash recovery, and decodes the
    /// matching reply's payload. A frame whose checksum passes but whose
    /// payload fails to decode (or whose tag makes no sense as a reply) is
    /// treated exactly like a corrupt frame: counted, dropped, and the
    /// request retransmitted — the service answers a retransmit from its
    /// cached-reply store, so a healthy peer converges in one round trip.
    fn exchange(&mut self, inflight: &Inflight) -> Response {
        let mut attempts = 0u32;
        loop {
            match self.transport.recv_timeout(self.policy.timeout) {
                Ok(bytes) => {
                    self.stats.frames_received += 1;
                    self.stats.bytes_received += bytes.len() as u64;
                    match Frame::from_bytes(&bytes) {
                        Ok(f) if f.seq == inflight.seq => match decode_reply(&f) {
                            Some(resp) => return resp,
                            None => {
                                self.stats.corrupt_frames += 1;
                                self.retransmit(inflight, &mut attempts);
                            }
                        },
                        // A reply to an older request: a retransmission
                        // echo we stopped waiting for. Drop it.
                        Ok(_) => continue,
                        Err(_) => {
                            self.stats.corrupt_frames += 1;
                            self.retransmit(inflight, &mut attempts);
                        }
                    }
                }
                Err(RecvError::Timeout) => self.retransmit(inflight, &mut attempts),
                Err(RecvError::Closed) | Err(RecvError::Io) => self.recover(inflight),
            }
        }
    }

    fn retransmit(&mut self, inflight: &Inflight, attempts: &mut u32) {
        *attempts += 1;
        // lint: allow(panic-free-wire): declared liveness policy — a shard unreachable past the retry budget is fatal by design (RetryPolicy docs)
        assert!(
            *attempts <= self.policy.max_retries,
            "shard {}: no reply to seq {} after {} retransmits",
            self.shard,
            inflight.seq,
            self.policy.max_retries
        );
        self.stats.retries += 1;
        let bytes = inflight.bytes.clone();
        self.transmit(&bytes);
    }

    /// The peer is gone: respawn a fresh service and rebuild its monitor
    /// by replaying the whole event journal (deterministic monitors make
    /// the result bit-identical to the lost state). The journal's last
    /// entry is the inflight request itself when that request is an event
    /// batch — its reply is left for [`Self::exchange`] to consume.
    fn recover(&mut self, inflight: &Inflight) {
        let Some(respawn) = self.respawn.as_mut() else {
            // lint: allow(panic-free-wire): declared liveness policy — without a respawn hook a dead shard means lost answers, which is fatal by design
            panic!("shard {} died and no respawn policy is set", self.shard);
        };
        self.stats.crash_recoveries += 1;
        self.transport = respawn();
        let journal = std::mem::take(&mut self.journal);
        for (seq, bytes) in &journal {
            self.stats.frames_sent += 1;
            self.stats.bytes_sent += bytes.len() as u64;
            let _ = self.transport.send(bytes);
            if *seq == inflight.seq {
                break; // exchange() consumes this reply
            }
            self.drain_replay_reply(*seq, bytes);
        }
        self.journal = journal;
        if !inflight.tag.is_events() {
            // A read-only request (Memory) was in flight: retransmit it
            // now that the rebuilt shard is caught up.
            let bytes = inflight.bytes.clone();
            self.transmit(&bytes);
        }
    }

    /// Consumes (and discards) the reply to one replayed journal frame.
    fn drain_replay_reply(&mut self, seq: u32, bytes: &[u8]) {
        let mut attempts = 0u32;
        loop {
            match self.transport.recv_timeout(self.policy.timeout) {
                Ok(reply) => {
                    self.stats.frames_received += 1;
                    self.stats.bytes_received += reply.len() as u64;
                    match Frame::from_bytes(&reply) {
                        Ok(f) if f.seq == seq => return,
                        Ok(_) => continue,
                        Err(_) => self.stats.corrupt_frames += 1,
                    }
                }
                Err(RecvError::Timeout) => {
                    attempts += 1;
                    // lint: allow(panic-free-wire): declared liveness policy — a replay stalled past the retry budget is fatal by design
                    assert!(
                        attempts <= self.policy.max_retries,
                        "shard {}: replay stalled at seq {seq}",
                        self.shard
                    );
                    self.stats.retries += 1;
                    self.stats.frames_sent += 1;
                    self.stats.bytes_sent += bytes.len() as u64;
                    let _ = self.transport.send(bytes);
                }
                // lint: allow(panic-free-wire): declared liveness policy — a second death mid-replay exhausts the recovery story and is fatal by design
                Err(_) => panic!("shard {} died again during journal replay", self.shard),
            }
        }
    }
}

/// Decodes a reply frame's payload by its tag; `None` for a payload that
/// does not decode or a tag that is not a reply — both are handled as
/// corruption by the caller, never as a panic.
fn decode_reply(frame: &Frame) -> Option<Response> {
    let mut r = WireReader::new(&frame.payload);
    match frame.tag {
        MsgTag::TickReply => TickOutcome::decode(&mut r).ok().map(Response::Tick),
        MsgTag::MemoryReply => MemoryUsage::decode(&mut r).ok().map(Response::Memory),
        _ => None,
    }
}
