//! The cluster's wire framing: a length-prefixed envelope around the
//! engine↔shard protocol payloads.
//!
//! Layout of one frame on the wire (all integers little-endian):
//!
//! ```text
//! ┌──────────┬─────────┬─────────┬───────────┬─────────┬───────────────┐
//! │ len: u32 │ tag:u16 │ seq:u32 │ epoch:u32 │ crc:u32 │ payload bytes │
//! └──────────┴─────────┴─────────┴───────────┴─────────┴───────────────┘
//! ```
//!
//! `len` counts everything after itself (`tag` + `seq` + `epoch` +
//! `crc` + payload), so a stream reader knows exactly how many bytes to
//! pull before attempting a decode. `crc` is the FNV-1a checksum
//! ([`rnn_roadnet::wire::checksum`]) over `tag`, `seq`, `epoch`, and the
//! payload; a mismatch means the frame was corrupted in flight and the
//! decoder reports [`WireError::Checksum`] instead of handing garbage to
//! the payload codecs. `seq` is the coordinator-assigned request
//! sequence number; replies echo the sequence of the request they
//! answer, which is what makes retransmission and duplicate-detection
//! possible. `epoch` is the shard log's leadership term: every frame a
//! leader sends is stamped with its current epoch, replicas and promoted
//! services reject frames from older epochs (fencing), and all
//! non-replicated traffic simply carries epoch 0.

use rnn_roadnet::wire::{checksum, put_u16, put_u32};
use rnn_roadnet::{WireError, WireReader};

/// Frame header bytes after the length prefix: tag + seq + epoch + crc.
pub const HEADER_LEN: usize = 2 + 4 + 4 + 4;

/// Wire message tags. One tag per protocol message so the receiver can
/// decode the payload without sniffing; the three request kinds that
/// carry a [`rnn_engine::DeltaBatch`] are distinguished so the engine's
/// phases (tick / halo resync / migration hand-off) are explicit on the
/// wire and in packet captures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum MsgTag {
    /// Request: a regular tick's delta batch.
    TickEvents = 1,
    /// Request: a halo-resync round's delta batch.
    ResyncEvents = 2,
    /// Request: a rebalance migration hand-off's delta batch.
    MigrationEvents = 3,
    /// Request: report resident memory.
    MemoryRequest = 4,
    /// Request: exit the service loop.
    Shutdown = 5,
    /// Reply to any of the three event requests: a `TickOutcome`.
    TickReply = 6,
    /// Reply to [`MsgTag::MemoryRequest`]: a `MemoryUsage`.
    MemoryReply = 7,
    /// Request: capture the monitor's answer-relevant state
    /// (`rnn_core::MonitorState`). Empty payload.
    SnapshotRequest = 8,
    /// Reply to [`MsgTag::SnapshotRequest`]: the encoded state, or an
    /// **empty** payload when the monitor does not support snapshots
    /// (the coordinator then disables the snapshot cycle for this link).
    SnapshotReply = 9,
    /// Request: restore the carried `rnn_core::MonitorState` into the
    /// (fresh) monitor. Sent during crash recovery **with the sequence
    /// number the snapshot covers**, so the service's duplicate filter
    /// accepts exactly the journal suffix (`seq > covered_seq`) replayed
    /// after it.
    SnapshotInstall = 10,
    /// Reply to [`MsgTag::SnapshotInstall`]: payload `[1]` on success,
    /// `[0]` if the restore was rejected.
    RestoreReply = 11,
    /// Replication request: append one journaled event frame (the
    /// payload is the *original* event frame's full wire bytes) to a
    /// follower replica's log. Carries the leader's epoch; a replica at
    /// a newer epoch rejects it as fenced.
    Append = 12,
    /// Replication reply: acknowledges [`MsgTag::Append`],
    /// [`MsgTag::Heartbeat`], [`MsgTag::SnapshotOffer`], and
    /// [`MsgTag::Promote`]. Payload byte 0 is the status
    /// ([`ACK_OK`] / [`ACK_FENCED`]); the frame's `epoch` echoes the
    /// replica's current epoch so a fenced leader learns how stale it is.
    AppendAck = 13,
    /// Replication request: leader liveness probe. The payload carries
    /// the leader's commit index (`u32`) so followers may truncate their
    /// own logs behind it; acked with [`MsgTag::AppendAck`].
    Heartbeat = 14,
    /// Replication request: promote this follower to serving leader for
    /// its shard. Payload: the new epoch is the frame's `epoch`; the
    /// payload carries the replay boundary sequence (`u32`, exclusive —
    /// `u32::MAX` replays everything) so an in-flight request is *not*
    /// replayed from the replica log but retransmitted by the
    /// coordinator after promotion.
    Promote = 15,
    /// Replication request: hand the follower the leader's latest
    /// durable snapshot (payload: covered seq `u32` + encoded
    /// `SnapshotReply` payload bytes) so the replica can truncate its
    /// log behind it; acked with [`MsgTag::AppendAck`].
    SnapshotOffer = 16,
}

/// [`MsgTag::AppendAck`] status byte: the request was accepted.
pub const ACK_OK: u8 = 1;
/// [`MsgTag::AppendAck`] status byte: the request came from a stale
/// epoch and was rejected (fenced), not applied.
pub const ACK_FENCED: u8 = 0;
/// [`MsgTag::AppendAck`] status byte: the replica refused a promotion
/// (malformed request, or its snapshot failed to restore). The leader
/// treats this follower as unusable and tries the next one.
pub const ACK_REFUSED: u8 = 2;

impl MsgTag {
    fn from_u16(v: u16) -> Result<Self, WireError> {
        Ok(match v {
            1 => MsgTag::TickEvents,
            2 => MsgTag::ResyncEvents,
            3 => MsgTag::MigrationEvents,
            4 => MsgTag::MemoryRequest,
            5 => MsgTag::Shutdown,
            6 => MsgTag::TickReply,
            7 => MsgTag::MemoryReply,
            8 => MsgTag::SnapshotRequest,
            9 => MsgTag::SnapshotReply,
            10 => MsgTag::SnapshotInstall,
            11 => MsgTag::RestoreReply,
            12 => MsgTag::Append,
            13 => MsgTag::AppendAck,
            14 => MsgTag::Heartbeat,
            15 => MsgTag::Promote,
            16 => MsgTag::SnapshotOffer,
            _ => return Err(WireError::Invalid("unknown message tag")),
        })
    }

    /// Whether this tag is one of the three delta-batch requests.
    pub fn is_events(self) -> bool {
        matches!(
            self,
            MsgTag::TickEvents | MsgTag::ResyncEvents | MsgTag::MigrationEvents
        )
    }
}

/// One decoded frame: the envelope fields plus the raw payload bytes
/// (decoded separately by the protocol codecs, so transport code never
/// depends on message internals).
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Message type.
    pub tag: MsgTag,
    /// Request sequence number (replies echo their request's).
    pub seq: u32,
    /// Leadership term of the sending shard log; 0 on every
    /// non-replicated path.
    pub epoch: u32,
    /// Message payload, still encoded.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Encodes the frame as one length-prefixed byte string ready for a
    /// single `send`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + HEADER_LEN + self.payload.len());
        put_u32(&mut out, (HEADER_LEN + self.payload.len()) as u32);
        put_u16(&mut out, self.tag as u16);
        put_u32(&mut out, self.seq);
        put_u32(&mut out, self.epoch);
        // Checksum covers tag + seq + epoch + payload; computed over a
        // scratch assembly of exactly those bytes.
        let mut covered = Vec::with_capacity(10 + self.payload.len());
        put_u16(&mut covered, self.tag as u16);
        put_u32(&mut covered, self.seq);
        put_u32(&mut covered, self.epoch);
        covered.extend_from_slice(&self.payload);
        put_u32(&mut out, checksum(&covered));
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes one frame from `bytes`, which must be the complete frame
    /// *including* its length prefix (exactly what [`Self::to_bytes`]
    /// produced and a transport's recv returned). Never panics: short
    /// input is [`WireError::Truncated`], a length prefix that disagrees
    /// with the buffer is [`WireError::Invalid`], and any corruption of
    /// the covered bytes is caught as [`WireError::Checksum`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let len = r.u32()? as usize;
        if len != r.remaining() {
            return Err(WireError::Invalid("frame length prefix mismatch"));
        }
        if len < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let tag_raw = r.u16()?;
        let seq = r.u32()?;
        let epoch = r.u32()?;
        let crc = r.u32()?;
        let payload = r.bytes(r.remaining())?;
        let mut covered = Vec::with_capacity(10 + payload.len());
        put_u16(&mut covered, tag_raw);
        put_u32(&mut covered, seq);
        put_u32(&mut covered, epoch);
        covered.extend_from_slice(payload);
        if checksum(&covered) != crc {
            return Err(WireError::Checksum);
        }
        let tag = MsgTag::from_u16(tag_raw)?;
        Ok(Frame {
            tag,
            seq,
            epoch,
            payload: payload.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for tag in [
            MsgTag::TickEvents,
            MsgTag::ResyncEvents,
            MsgTag::MigrationEvents,
            MsgTag::MemoryRequest,
            MsgTag::Shutdown,
            MsgTag::TickReply,
            MsgTag::MemoryReply,
            MsgTag::SnapshotRequest,
            MsgTag::SnapshotReply,
            MsgTag::SnapshotInstall,
            MsgTag::RestoreReply,
            MsgTag::Append,
            MsgTag::AppendAck,
            MsgTag::Heartbeat,
            MsgTag::Promote,
            MsgTag::SnapshotOffer,
        ] {
            let f = Frame {
                tag,
                seq: 0xDEAD_BEEF,
                epoch: 0xCAFE_F00D,
                payload: vec![1, 2, 3, 4, 5],
            };
            let bytes = f.to_bytes();
            assert_eq!(Frame::from_bytes(&bytes).unwrap(), f);
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let f = Frame {
            tag: MsgTag::TickEvents,
            seq: 7,
            epoch: 3,
            payload: b"delta batch bytes".to_vec(),
        };
        let bytes = f.to_bytes();
        // Flip each bit past the length prefix (corrupting the prefix
        // itself is a framing error, reported as Invalid/Truncated).
        for byte in 4..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    Frame::from_bytes(&bad).is_err(),
                    "bit {bit} of byte {byte} slipped through"
                );
            }
        }
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let bytes = Frame {
            tag: MsgTag::TickReply,
            seq: 1,
            epoch: 0,
            payload: vec![9; 32],
        }
        .to_bytes();
        for cut in 0..bytes.len() {
            assert!(Frame::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
