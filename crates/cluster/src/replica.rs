//! The follower side of the per-shard replicated journal: a
//! [`ReplicaNode`] is a hot standby that accumulates the leader's
//! [`MsgTag::Append`] stream (and snapshot offers) without running a
//! monitor — until it is promoted, at which point it rebuilds the
//! shard's state entirely *from its own replicated log* and becomes the
//! serving [`crate::service::ShardService`] on the same transport.
//!
//! # Fencing
//!
//! The replica remembers the highest leadership epoch it has seen.
//! Every frame from an older epoch is answered with an
//! [`ACK_FENCED`] ack and **not applied** — this is what makes a
//! partitioned stale leader's appends provably rejected rather than
//! silently merged. Frames from a newer epoch advance the replica's
//! own epoch (the legitimate leader has moved on).
//!
//! # Promotion
//!
//! A [`MsgTag::Promote`] carries the new epoch and a replay boundary:
//! the replica installs its held snapshot (if any), locally replays its
//! log strictly *below* the boundary through the same
//! [`rnn_engine::ShardTickState`] tick path a service uses — computing
//! the real encoded replies so the service's duplicate-suppression
//! cache is seeded bit-identically to an uncrashed shard's — acks, and
//! then serves. The in-flight request at the boundary is deliberately
//! *not* replayed: the coordinator retransmits it (re-stamped with the
//! new epoch) and the promoted service processes it fresh, exactly
//! once.

use std::time::Duration;

use rnn_core::{ContinuousMonitor, MonitorState};
use rnn_engine::{DeltaBatch, ShardTickState};
use rnn_roadnet::{WireCodec, WireReader};

use crate::frame::{Frame, MsgTag, ACK_FENCED, ACK_OK, ACK_REFUSED};
use crate::service::ShardService;
use crate::transport::{RecvError, Transport};

/// Re-poll cadence while waiting for leader traffic (liveness only).
const POLL: Duration = Duration::from_millis(250);

/// Builds the monitor a promoted replica serves with. Deferred to
/// promotion time so an idle standby costs no monitor state.
pub type MonitorFactory = Box<dyn FnOnce() -> Box<dyn ContinuousMonitor> + Send>;

/// One follower replica of a shard's event log.
pub struct ReplicaNode<T: Transport> {
    transport: T,
    /// `Some` until promotion consumes it (promotion runs at most once
    /// — it takes the node by value).
    make_monitor: Option<MonitorFactory>,
    attribute_cells: bool,
    /// Appended event frames (verbatim wire bytes) in sequence order,
    /// truncated behind each accepted snapshot offer.
    log: Vec<(u32, Vec<u8>)>,
    /// Latest offered snapshot: the sequence it covers and the encoded
    /// `MonitorState` payload.
    snapshot: Option<(u32, Vec<u8>)>,
    /// Highest leadership epoch seen; older frames are fenced.
    epoch: u32,
}

impl<T: Transport> ReplicaNode<T> {
    /// A follower on `transport`. `make_monitor` runs once, at
    /// promotion; `attribute_cells` mirrors the serving flag the
    /// promoted service needs.
    pub fn new(transport: T, make_monitor: MonitorFactory, attribute_cells: bool) -> Self {
        Self {
            transport,
            make_monitor: Some(make_monitor),
            attribute_cells,
            log: Vec::new(),
            snapshot: None,
            epoch: 0,
        }
    }

    /// Follows the leader until the transport closes (leader gone, or
    /// link dropped) or a promotion turns this node into the serving
    /// shard service.
    pub fn run(mut self) {
        loop {
            let bytes = match self.transport.recv_timeout(POLL) {
                Ok(bytes) => bytes,
                Err(RecvError::Timeout) => continue,
                Err(RecvError::Closed) | Err(RecvError::Io) => return,
            };
            // Corrupt frames are dropped; the leader's ack timeout owns
            // recovery (it marks this follower dead, never retries into
            // garbage).
            let Ok(frame) = Frame::from_bytes(&bytes) else {
                continue;
            };
            if frame.epoch < self.epoch {
                // Fencing: a stale leader's frame is rejected, not
                // applied, and the ack carries our newer epoch so the
                // sender learns how stale it is.
                self.ack(frame.seq, ACK_FENCED);
                continue;
            }
            self.epoch = frame.epoch;
            match frame.tag {
                MsgTag::Append => self.handle_append(frame),
                MsgTag::Heartbeat => self.ack(frame.seq, ACK_OK),
                MsgTag::SnapshotOffer => self.handle_offer(frame),
                MsgTag::Promote => {
                    let mut r = WireReader::new(&frame.payload);
                    let Ok(boundary) = r.u32() else {
                        self.ack(frame.seq, ACK_REFUSED);
                        continue;
                    };
                    return self.promote(frame.seq, boundary);
                }
                // Anything else is foreign traffic for a follower.
                _ => continue,
            }
        }
    }

    /// Stores one appended event frame, deduplicating retransmits and
    /// duplicated frames by sequence number (appends from a single
    /// leader arrive in order, so "already at or behind the log tail or
    /// the snapshot" means "already applied").
    fn handle_append(&mut self, frame: Frame) {
        let seq = frame.seq;
        let covered = self.snapshot.as_ref().map(|(c, _)| *c);
        let duplicate = covered.is_some_and(|c| seq <= c)
            || self.log.last().is_some_and(|(tail, _)| *tail >= seq);
        if !duplicate {
            self.log.push((seq, frame.payload));
        }
        self.ack(seq, ACK_OK);
    }

    /// Adopts an offered snapshot and truncates the local log behind
    /// the sequence it covers — the replica-side mirror of the leader's
    /// truncate-behind-commit.
    fn handle_offer(&mut self, frame: Frame) {
        let mut r = WireReader::new(&frame.payload);
        let Ok(covered) = r.u32() else {
            self.ack(frame.seq, ACK_REFUSED);
            return;
        };
        let Ok(rest) = r.bytes(r.remaining()) else {
            self.ack(frame.seq, ACK_REFUSED);
            return;
        };
        self.snapshot = Some((covered, rest.to_vec()));
        self.log.retain(|(seq, _)| *seq > covered);
        self.ack(frame.seq, ACK_OK);
    }

    /// Becomes the serving leader: snapshot install + local replay of
    /// the log strictly below `boundary`, then a [`ACK_OK`] ack, then
    /// the service loop on the same transport.
    fn promote(mut self, ack_seq: u32, boundary: u32) {
        let Some(make_monitor) = self.make_monitor.take() else {
            // Unreachable (promotion consumes the node), but refusing is
            // strictly safer than panicking on the wire path.
            self.ack(ack_seq, ACK_REFUSED);
            return;
        };
        let mut monitor = make_monitor();
        let mut tick_state = ShardTickState::new();
        if let Some((_covered, snap)) = &self.snapshot {
            let restored = match MonitorState::from_bytes(snap) {
                Ok(state) => {
                    let ok = state.restore_into(&mut *monitor).is_ok();
                    if ok {
                        // Seed the shipped-result cache from the restored
                        // results so post-promotion replies (and
                        // `results_changed`) match an uncrashed shard's.
                        tick_state.prime(&state.queries);
                    }
                    ok
                }
                Err(_) => false,
            };
            if !restored {
                // The fresh monitor could not reproduce the recorded
                // state: refuse promotion so the leader tries another
                // follower (or falls through to planner takeover).
                self.ack(ack_seq, ACK_REFUSED);
                return;
            }
        }
        let mut last = None;
        for (seq, bytes) in &self.log {
            if *seq >= boundary {
                break; // the in-flight frame: the coordinator retransmits it
            }
            let Ok(event) = Frame::from_bytes(bytes) else {
                continue;
            };
            let mut r = WireReader::new(&event.payload);
            let Ok(delta) = DeltaBatch::decode(&mut r) else {
                continue;
            };
            let outcome = tick_state.run_tick(&mut *monitor, delta, self.attribute_cells);
            let mut payload = Vec::new();
            outcome.encode(&mut payload);
            let reply = Frame {
                tag: MsgTag::TickReply,
                seq: *seq,
                epoch: self.epoch,
                payload,
            }
            .to_bytes();
            last = Some((*seq, reply));
        }
        self.ack(ack_seq, ACK_OK);
        ShardService::resume(
            self.transport,
            monitor,
            self.attribute_cells,
            tick_state,
            last,
            self.epoch,
        )
        .run();
    }

    fn ack(&mut self, seq: u32, status: u8) {
        let ack = Frame {
            tag: MsgTag::AppendAck,
            seq,
            epoch: self.epoch,
            payload: vec![status],
        }
        .to_bytes();
        // A send to a gone leader is fine: the next recv observes
        // Closed and the node exits.
        let _ = self.transport.send(&ack);
    }
}
