//! The leader side of the per-shard replicated journal.
//!
//! Each shard's coordinator link acts as the **leader** of that shard's
//! event log: every routed event frame is streamed verbatim to F
//! follower replicas ([`crate::replica::ReplicaNode`]) as
//! [`MsgTag::Append`] frames before it is dispatched to the shard
//! monitor, and the event only *commits* — becomes eligible for WAL
//! truncation and for feeding the monitor — once a configurable quorum
//! of followers has acked it.
//!
//! # Epochs and fencing
//!
//! Every frame a leader sends carries its leadership **epoch** (a
//! monotone term, persisted beside the WAL via
//! [`crate::wal::store_epoch`]). Replicas remember the highest epoch
//! they have seen and answer any frame from an older epoch with a
//! FENCED ack instead of applying it, so a partitioned stale leader's
//! appends are rejected, never silently merged. Promotion bumps the
//! epoch first, which is what turns the old leader stale.
//!
//! # Failure handling
//!
//! The append path is synchronous: the leader waits for acks from every
//! live follower (commit requires `quorum` of them), so any live
//! follower always holds the complete committed prefix and is safe to
//! promote. A follower that times out or closes is marked dead and
//! skipped from then on; once *every* follower is dead the log degrades
//! to unreplicated operation (availability over redundancy — the
//! engine's planner takeover remains the last-resort path). Losing
//! followers below `quorum` therefore degrades the redundancy
//! guarantee, not the shard's availability; the heartbeat/failure
//! counters make the degradation observable.

use std::path::PathBuf;
use std::time::Duration;

use rnn_core::TransportStats;
use rnn_roadnet::wire::put_u32;

use crate::error::ClusterError;
use crate::frame::{Frame, MsgTag, ACK_FENCED, ACK_OK};
use crate::transport::{RecvError, Transport};

/// Promotion replay boundary meaning "replay the entire replica log"
/// (no request was in flight when the leader died).
pub const REPLAY_ALL: u32 = u32::MAX;

/// What one ack drain produced.
enum Ack {
    /// The replica accepted the frame.
    Ok,
    /// The replica is at a newer epoch and rejected the frame.
    Fenced { newer: u32 },
    /// The replica timed out or closed; it is dead to this leader.
    Dead,
}

struct Follower {
    transport: Box<dyn Transport>,
    alive: bool,
}

/// The leader-side state of one shard's replicated journal: the
/// follower transports, the current epoch, and the commit index.
pub struct ReplicatedLog {
    shard: usize,
    followers: Vec<Follower>,
    quorum: u32,
    heartbeat_every: u32,
    ack_timeout: Duration,
    epoch: u32,
    /// Durability directory for [`crate::wal::store_epoch`]; `None`
    /// keeps the epoch in memory only.
    epoch_dir: Option<PathBuf>,
    /// Highest sequence number a quorum has acked.
    commit_seq: Option<u32>,
    appends_since_heartbeat: u32,
}

impl ReplicatedLog {
    /// A leader over `replicas` follower transports. `quorum` is the
    /// ack count an append needs to commit (clamped to the live
    /// follower count as followers die); `heartbeat_every` sends a
    /// liveness probe once per that many appends (0 disables);
    /// `epoch` is the starting term (a restarted coordinator passes
    /// [`crate::wal::load_epoch`]); `epoch_dir`, when set, persists
    /// every epoch bump beside the WAL.
    pub fn new(
        shard: usize,
        replicas: Vec<Box<dyn Transport>>,
        quorum: u32,
        heartbeat_every: u32,
        epoch: u32,
        epoch_dir: Option<PathBuf>,
    ) -> Self {
        Self {
            shard,
            followers: replicas
                .into_iter()
                .map(|transport| Follower {
                    transport,
                    alive: true,
                })
                .collect(),
            quorum: quorum.max(1),
            heartbeat_every,
            ack_timeout: Duration::from_secs(1),
            epoch,
            epoch_dir,
            commit_seq: None,
            appends_since_heartbeat: 0,
        }
    }

    /// Overrides the per-ack wait (defaults to 1 s — the same order as
    /// [`crate::client::RetryPolicy`]'s reply timeout).
    pub fn with_ack_timeout(mut self, timeout: Duration) -> Self {
        self.ack_timeout = timeout;
        self
    }

    /// The current leadership epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Highest quorum-acked sequence number, if any event committed.
    pub fn commit_seq(&self) -> Option<u32> {
        self.commit_seq
    }

    /// Followers still considered alive.
    pub fn live_followers(&self) -> usize {
        self.followers.iter().filter(|f| f.alive).count()
    }

    /// Replicates one journaled event frame (`event_frame` is the exact
    /// wire byte string sent to the shard) and waits until it commits:
    /// every live follower is sent an [`MsgTag::Append`] and drained
    /// for its ack. Fencing is fatal ([`ClusterError::Fenced`]); dead
    /// followers are marked and skipped. Also runs the heartbeat
    /// cadence. Returns once the frame is committed (or the log has
    /// degraded to zero followers).
    pub fn append(
        &mut self,
        seq: u32,
        event_frame: &[u8],
        stats: &mut TransportStats,
    ) -> Result<(), ClusterError> {
        if self.live_followers() == 0 {
            // Degraded: unreplicated operation (planner takeover is the
            // net). The frame commits trivially so WAL truncation never
            // deadlocks behind followers that no longer exist.
            self.commit_seq = Some(seq);
            return Ok(());
        }
        let frame = Frame {
            tag: MsgTag::Append,
            seq,
            epoch: self.epoch,
            payload: event_frame.to_vec(),
        }
        .to_bytes();
        // One outstanding frame per synchronous append: the commit-lag
        // counter advances by exactly one, making the per-tick rate a
        // deterministic gate metric.
        stats.commit_lag_frames += 1;
        let mut acks = 0u32;
        let (shard, epoch, timeout) = (self.shard, self.epoch, self.ack_timeout);
        for follower in self.followers.iter_mut().filter(|f| f.alive) {
            if follower.transport.send(&frame).is_err() {
                follower.alive = false;
                continue;
            }
            stats.replica_appends += 1;
            stats.replica_bytes += frame.len() as u64;
            match drain_ack(&mut follower.transport, seq, timeout) {
                Ack::Ok => acks += 1,
                Ack::Fenced { newer } => {
                    stats.fenced_appends += 1;
                    return Err(ClusterError::Fenced {
                        shard,
                        epoch,
                        newer,
                    });
                }
                Ack::Dead => follower.alive = false,
            }
        }
        if acks >= self.quorum.min(self.live_followers() as u32).max(1)
            || self.live_followers() == 0
        {
            self.commit_seq = Some(seq);
        }
        self.heartbeat_if_due(stats);
        Ok(())
    }

    /// Runs the heartbeat cadence: once per `heartbeat_every` appends,
    /// probe every live follower with the commit index. A follower that
    /// does not ack within the timeout is the failure detector's
    /// signal: it is marked dead and excluded from future appends and
    /// promotion. A fenced heartbeat is only counted — the next append
    /// surfaces the typed error on the write path.
    fn heartbeat_if_due(&mut self, stats: &mut TransportStats) {
        if self.heartbeat_every == 0 {
            return;
        }
        self.appends_since_heartbeat += 1;
        if self.appends_since_heartbeat < self.heartbeat_every {
            return;
        }
        self.appends_since_heartbeat = 0;
        let commit = self.commit_seq.unwrap_or(0);
        let mut payload = Vec::with_capacity(4);
        put_u32(&mut payload, commit);
        let frame = Frame {
            tag: MsgTag::Heartbeat,
            seq: commit,
            epoch: self.epoch,
            payload,
        }
        .to_bytes();
        let timeout = self.ack_timeout;
        for follower in self.followers.iter_mut().filter(|f| f.alive) {
            if follower.transport.send(&frame).is_err() {
                follower.alive = false;
                continue;
            }
            stats.heartbeats += 1;
            stats.replica_bytes += frame.len() as u64;
            match drain_ack(&mut follower.transport, commit, timeout) {
                Ack::Ok => {}
                Ack::Fenced { .. } => stats.fenced_appends += 1,
                Ack::Dead => follower.alive = false,
            }
        }
    }

    /// Hands every live follower the latest durable snapshot so it can
    /// truncate its own log behind `covered_seq`. Strictly best-effort:
    /// failures mark followers dead (or count a fence) and the caller's
    /// next append owns any typed error.
    pub fn offer_snapshot(
        &mut self,
        covered_seq: u32,
        snapshot_payload: &[u8],
        stats: &mut TransportStats,
    ) {
        let mut payload = Vec::with_capacity(4 + snapshot_payload.len());
        put_u32(&mut payload, covered_seq);
        payload.extend_from_slice(snapshot_payload);
        let frame = Frame {
            tag: MsgTag::SnapshotOffer,
            seq: covered_seq,
            epoch: self.epoch,
            payload,
        }
        .to_bytes();
        let timeout = self.ack_timeout;
        for follower in self.followers.iter_mut().filter(|f| f.alive) {
            if follower.transport.send(&frame).is_err() {
                follower.alive = false;
                continue;
            }
            stats.replica_bytes += frame.len() as u64;
            match drain_ack(&mut follower.transport, covered_seq, timeout) {
                Ack::Ok => {}
                Ack::Fenced { .. } => stats.fenced_appends += 1,
                Ack::Dead => follower.alive = false,
            }
        }
    }

    /// Promotes a live follower to serving leader: bumps (and persists)
    /// the epoch — fencing the old term — then sends the follower a
    /// [`MsgTag::Promote`] carrying `boundary` (the first sequence it
    /// must *not* replay from its own log, [`REPLAY_ALL`] for none) and
    /// waits for its ack, after which the follower has installed its
    /// held snapshot, replayed its committed suffix, and become a
    /// serving [`crate::service::ShardService`]. On success the
    /// follower's transport is removed from the replica set and
    /// returned for the link to adopt as its shard transport.
    pub fn promote(
        &mut self,
        boundary: u32,
        stats: &mut TransportStats,
    ) -> Result<Box<dyn Transport>, ClusterError> {
        self.epoch += 1;
        if let Some(dir) = &self.epoch_dir {
            // Degraded durability on failure: the in-memory epoch still
            // fences this process; only a restart could regress it.
            let _ = crate::wal::store_epoch(dir, self.epoch);
        }
        let mut payload = Vec::with_capacity(4);
        put_u32(&mut payload, boundary);
        let frame = Frame {
            tag: MsgTag::Promote,
            seq: boundary,
            epoch: self.epoch,
            payload,
        }
        .to_bytes();
        // Promotion includes a local snapshot install and suffix
        // replay on the follower; give it a generous multiple of the
        // per-ack wait.
        let timeout = self.ack_timeout.saturating_mul(8);
        let (shard, epoch) = (self.shard, self.epoch);
        for idx in 0..self.followers.len() {
            let Some(follower) = self.followers.get_mut(idx) else {
                break;
            };
            if !follower.alive {
                continue;
            }
            if follower.transport.send(&frame).is_err() {
                follower.alive = false;
                continue;
            }
            stats.replica_bytes += frame.len() as u64;
            match drain_ack(&mut follower.transport, boundary, timeout) {
                Ack::Ok => {
                    stats.failovers += 1;
                    // `idx` is in bounds (the `get_mut` above proved it)
                    // and the promoted follower leaves the replica set.
                    return Ok(self.followers.remove(idx).transport);
                }
                Ack::Fenced { newer } => {
                    stats.fenced_appends += 1;
                    return Err(ClusterError::Fenced {
                        shard,
                        epoch,
                        newer,
                    });
                }
                Ack::Dead => follower.alive = false,
            }
        }
        Err(ClusterError::FailoverFailed { shard })
    }
}

/// Waits out one [`MsgTag::AppendAck`] matching `seq` on `transport`.
/// Stale acks (duplicated frames produce duplicate acks) are skipped;
/// undecodable frames are skipped (the checksum already vouched against
/// line noise, so they can only be foreign traffic); a timeout or a
/// closed transport reports the follower dead.
fn drain_ack(transport: &mut Box<dyn Transport>, seq: u32, timeout: Duration) -> Ack {
    loop {
        match transport.recv_timeout(timeout) {
            Ok(bytes) => {
                let Ok(frame) = Frame::from_bytes(&bytes) else {
                    continue;
                };
                if frame.tag != MsgTag::AppendAck || frame.seq != seq {
                    continue; // stale echo of an earlier (duplicated) ack
                }
                return match frame.payload.first() {
                    Some(&ACK_OK) => Ack::Ok,
                    Some(&ACK_FENCED) => Ack::Fenced { newer: frame.epoch },
                    _ => Ack::Dead, // malformed ack: treat as a dead follower
                };
            }
            Err(RecvError::Timeout) | Err(RecvError::Closed) | Err(RecvError::Io) => {
                return Ack::Dead
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{loopback_pair, FaultPlan, LoopbackPeer};
    use std::time::Duration;

    /// A hand-driven follower for unit tests: acks every append with
    /// the given status and records what it saw.
    fn ack_thread(mut peer: LoopbackPeer, my_epoch: u32) -> std::thread::JoinHandle<Vec<u32>> {
        std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Ok(bytes) = peer.recv_timeout(Duration::from_secs(2)) {
                let Ok(frame) = Frame::from_bytes(&bytes) else {
                    continue;
                };
                seen.push(frame.seq);
                let status = if frame.epoch < my_epoch {
                    ACK_FENCED
                } else {
                    ACK_OK
                };
                let ack = Frame {
                    tag: MsgTag::AppendAck,
                    seq: frame.seq,
                    epoch: my_epoch.max(frame.epoch),
                    payload: vec![status],
                }
                .to_bytes();
                let _ = peer.send(&ack);
            }
            seen
        })
    }

    fn event(seq: u32) -> Vec<u8> {
        Frame {
            tag: MsgTag::TickEvents,
            seq,
            epoch: 0,
            payload: vec![seq as u8; 9],
        }
        .to_bytes()
    }

    #[test]
    fn append_commits_once_quorum_acks() {
        let (co_a, peer_a) = loopback_pair(FaultPlan::default());
        let (co_b, peer_b) = loopback_pair(FaultPlan::default());
        let a = ack_thread(peer_a, 0);
        let b = ack_thread(peer_b, 0);
        let mut log = ReplicatedLog::new(3, vec![Box::new(co_a), Box::new(co_b)], 2, 0, 1, None);
        let mut stats = TransportStats::default();
        log.append(0, &event(0), &mut stats).unwrap();
        log.append(1, &event(1), &mut stats).unwrap();
        assert_eq!(log.commit_seq(), Some(1));
        assert_eq!(stats.replica_appends, 4, "2 events x 2 followers");
        assert_eq!(stats.commit_lag_frames, 2);
        assert_eq!(stats.fenced_appends, 0);
        drop(log); // closes the transports; ack threads exit
        assert_eq!(a.join().unwrap(), vec![0, 1]);
        assert_eq!(b.join().unwrap(), vec![0, 1]);
    }

    #[test]
    fn dead_follower_is_marked_and_skipped_not_fatal() {
        let (co_a, peer_a) = loopback_pair(FaultPlan::default());
        let (co_b, peer_b) = loopback_pair(FaultPlan::default());
        let a = ack_thread(peer_a, 0);
        drop(peer_b); // follower b is dead from the start
        let mut log = ReplicatedLog::new(0, vec![Box::new(co_a), Box::new(co_b)], 2, 0, 1, None)
            .with_ack_timeout(Duration::from_millis(50));
        let mut stats = TransportStats::default();
        log.append(0, &event(0), &mut stats).unwrap();
        assert_eq!(log.live_followers(), 1);
        // Quorum clamps to the live follower count: still committing.
        assert_eq!(log.commit_seq(), Some(0));
        log.append(1, &event(1), &mut stats).unwrap();
        assert_eq!(log.commit_seq(), Some(1));
        drop(log);
        assert_eq!(a.join().unwrap(), vec![0, 1]);
    }

    #[test]
    fn stale_leader_appends_are_fenced() {
        let (co_a, peer_a) = loopback_pair(FaultPlan::default());
        let a = ack_thread(peer_a, 5); // replica already at epoch 5
        let mut log = ReplicatedLog::new(1, vec![Box::new(co_a)], 1, 0, 3, None);
        let mut stats = TransportStats::default();
        let err = log.append(0, &event(0), &mut stats).unwrap_err();
        assert_eq!(
            err,
            ClusterError::Fenced {
                shard: 1,
                epoch: 3,
                newer: 5
            }
        );
        assert_eq!(stats.fenced_appends, 1);
        assert_eq!(log.commit_seq(), None, "a fenced append never commits");
        drop(log);
        a.join().unwrap();
    }

    #[test]
    fn all_followers_dead_degrades_to_unreplicated() {
        let (co_a, peer_a) = loopback_pair(FaultPlan::default());
        drop(peer_a);
        let mut log = ReplicatedLog::new(0, vec![Box::new(co_a)], 1, 0, 1, None)
            .with_ack_timeout(Duration::from_millis(50));
        let mut stats = TransportStats::default();
        log.append(0, &event(0), &mut stats).unwrap();
        assert_eq!(log.live_followers(), 0);
        // Degraded mode: appends are accepted without replication.
        log.append(1, &event(1), &mut stats).unwrap();
        let Err(err) = log.promote(REPLAY_ALL, &mut stats) else {
            panic!("promotion with zero live followers must fail");
        };
        assert_eq!(err, ClusterError::FailoverFailed { shard: 0 });
    }
}
