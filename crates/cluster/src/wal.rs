//! Per-shard write-ahead log of routed input events.
//!
//! The WAL is the disk image of the coordinator's in-memory event
//! journal: every event frame sent to a shard is appended **verbatim**
//! (the exact [`Frame::to_bytes`] byte string, so each record carries
//! the frame's own length prefix and FNV checksum — no second framing
//! layer to keep in sync). `fsync` is batched: the file is synced every
//! [`DurabilityConfig::fsync_every`](crate::client::DurabilityConfig)
//! appends, trading a bounded window of unsynced events for fewer
//! forced flushes.
//!
//! On reopen the log is scanned record by record and truncated at the
//! first incomplete or invalid record — a **torn tail** from a crash
//! mid-append (or mid-page-flush) is discarded cleanly rather than
//! poisoning recovery. Anything before the tear decodes exactly as it
//! was sent; anything after it was never acknowledged as durable.
//!
//! The log is truncated to empty whenever a monitor-state snapshot
//! becomes durable: the snapshot covers every journaled event, so
//! recovery replays only the post-snapshot suffix (see
//! [`crate::client`]). That bound — replay work proportional to the WAL
//! suffix, not the run length — is what the recovery benchmark gates.
//!
//! With replication enabled the truncation point is additionally gated
//! behind the replicated log's **commit index**: a snapshot (and the
//! WAL reset it triggers) only covers events a quorum of followers has
//! acked, so no follower can be promoted into a state the truncated log
//! can no longer reproduce. The shard log's leadership **epoch** is
//! persisted beside the WAL ([`store_epoch`] / [`load_epoch`]) so a
//! restarted coordinator resumes fencing from its last known term
//! instead of silently rejoining at epoch 0.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use rnn_roadnet::wire::{checksum, put_u32};

use crate::frame::Frame;

/// File name of the persisted leadership epoch, beside `events.wal`.
const EPOCH_FILE: &str = "epoch.bin";

/// Persists `epoch` under `dir` as a self-checksummed record, written
/// tmp + fsync + rename so a crash leaves either the old epoch or the
/// new one, never a torn file. Callers treat failures as degraded
/// durability (the in-memory epoch still fences), not as fatal.
pub fn store_epoch(dir: &Path, epoch: u32) -> std::io::Result<()> {
    let mut bytes = Vec::with_capacity(8);
    put_u32(&mut bytes, epoch);
    let crc = checksum(&bytes);
    put_u32(&mut bytes, crc);
    let tmp = dir.join("epoch.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(&bytes)?;
    f.sync_data()?;
    drop(f);
    std::fs::rename(&tmp, dir.join(EPOCH_FILE))
}

/// Reads the persisted leadership epoch under `dir`. Absent, short, or
/// checksum-failing files read as epoch 0 — the pre-replication default
/// — so the caller never trusts a torn record.
pub fn load_epoch(dir: &Path) -> u32 {
    let Ok(bytes) = std::fs::read(dir.join(EPOCH_FILE)) else {
        return 0;
    };
    let (Some(value), Some(crc)) = (bytes.get(..4), bytes.get(4..8)) else {
        return 0;
    };
    // lint: allow(panic-free-wire): a 4-byte slice always converts to [u8; 4]
    let epoch = u32::from_le_bytes(value.try_into().expect("4-byte slice"));
    // lint: allow(panic-free-wire): a 4-byte slice always converts to [u8; 4]
    let stored = u32::from_le_bytes(crc.try_into().expect("4-byte slice"));
    if checksum(value) != stored {
        return 0;
    }
    epoch
}

/// One recovered WAL record: the frame's sequence number with its
/// verbatim on-disk (= on-wire) bytes.
pub type WalRecord = (u32, Vec<u8>);

/// Splits `bytes` into the leading run of valid WAL records. Returns the
/// decoded records — each frame's sequence number with its verbatim
/// bytes — and the byte length of that valid prefix. Scanning stops (it
/// never panics and never errors) at the first record that is
/// incomplete, undecodable, or fails its checksum; everything after that
/// offset is torn tail.
pub fn scan(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut off = 0usize;
    // A record needs at least a length prefix; anything shorter is tail.
    while let Some(prefix) = bytes.get(off..off + 4) {
        // lint: allow(panic-free-wire): a 4-byte slice always converts to [u8; 4]
        let len = u32::from_le_bytes(prefix.try_into().expect("4-byte slice")) as usize;
        let Some(total) = len.checked_add(4) else {
            break; // absurd length: torn or corrupt
        };
        let Some(record) = bytes.get(off..off + total) else {
            break; // incomplete record: torn tail
        };
        let Ok(frame) = Frame::from_bytes(record) else {
            break; // checksum / framing failure: torn tail
        };
        records.push((frame.seq, record.to_vec()));
        off += total;
    }
    (records, off)
}

/// An append-only log of event frames with batched fsync and torn-tail
/// recovery. See the module docs for the format and guarantees.
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
    fsync_every: u32,
    unsynced: u32,
}

impl Wal {
    /// Opens (or creates) the log at `path`, recovering the valid record
    /// prefix of any existing file: the surviving records are returned
    /// (they rebuild the in-memory journal) and a torn tail, if present,
    /// is truncated away before the log accepts new appends.
    ///
    /// `fsync_every` batches durability: the file is synced once per
    /// that many appends (values of 0 are treated as 1 — sync always).
    pub fn open(path: &Path, fsync_every: u32) -> std::io::Result<(Self, Vec<WalRecord>)> {
        let mut existing = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut existing)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let (records, valid_len) = scan(&existing);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        if valid_len as u64 != file.metadata()?.len() {
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Self {
                file,
                path: path.to_path_buf(),
                bytes: valid_len as u64,
                fsync_every: fsync_every.max(1),
                unsynced: 0,
            },
            records,
        ))
    }

    /// Appends one record (a complete encoded frame) and syncs if the
    /// batch window is full.
    pub fn append(&mut self, frame_bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(frame_bytes)?;
        self.bytes += frame_bytes.len() as u64;
        self.unsynced += 1;
        if self.unsynced >= self.fsync_every {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Empties the log — called once a snapshot covering every logged
    /// event has become durable (snapshot first, truncate after: the
    /// ordering is what makes the pair crash-safe).
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.bytes = 0;
        self.unsynced = 0;
        Ok(())
    }

    /// Current log size in bytes (the replay-suffix bound).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::MsgTag;

    fn record(seq: u32, payload: &[u8]) -> Vec<u8> {
        Frame {
            tag: MsgTag::TickEvents,
            seq,
            epoch: 0,
            payload: payload.to_vec(),
        }
        .to_bytes()
    }

    #[test]
    fn scan_recovers_full_prefix_and_rejects_every_torn_tail() {
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for seq in 0..5u32 {
            log.extend_from_slice(&record(seq, &vec![seq as u8; 7 + seq as usize]));
            boundaries.push(log.len());
        }
        // Truncating at EVERY byte offset keeps exactly the records whose
        // final byte survived — and never panics.
        for cut in 0..=log.len() {
            let (records, valid_len) = scan(&log[..cut]);
            let expect = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(records.len(), expect, "cut at {cut}");
            assert_eq!(valid_len, boundaries[expect], "cut at {cut}");
            for (i, (seq, bytes)) in records.iter().enumerate() {
                assert_eq!(*seq, i as u32);
                assert_eq!(Frame::from_bytes(bytes).unwrap().seq, i as u32);
            }
        }
    }

    #[test]
    fn scan_stops_at_corruption_not_just_truncation() {
        let mut log = record(1, b"first");
        let second_at = log.len();
        log.extend_from_slice(&record(2, b"second"));
        log[second_at + 6] ^= 0x01; // corrupt record 2 past its prefix
        let (records, valid_len) = scan(&log);
        assert_eq!(records.len(), 1);
        assert_eq!(valid_len, second_at);
    }

    #[test]
    fn wal_reopen_truncates_torn_tail_and_replays_records() {
        let dir = std::env::temp_dir().join(format!("rnn-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, recovered) = Wal::open(&path, 1).unwrap();
        assert!(recovered.is_empty());
        for seq in 0..3u32 {
            wal.append(&record(seq, b"payload")).unwrap();
        }
        let clean_bytes = wal.bytes();
        drop(wal);

        // Tear the tail: append half a record's worth of garbage.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&record(3, b"torn")[..9]).unwrap();
        drop(f);

        let (wal, recovered) = Wal::open(&path, 1).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(wal.bytes(), clean_bytes);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_bytes);
        for (i, (seq, _)) in recovered.iter().enumerate() {
            assert_eq!(*seq, i as u32);
        }

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn epoch_round_trips_and_torn_files_read_as_zero() {
        let dir = std::env::temp_dir().join(format!("rnn-epoch-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(load_epoch(&dir), 0, "absent file is epoch 0");
        store_epoch(&dir, 7).unwrap();
        assert_eq!(load_epoch(&dir), 7);
        store_epoch(&dir, 8).unwrap();
        assert_eq!(load_epoch(&dir), 8, "rename replaces atomically");
        // Corrupt the stored value: the checksum must reject it.
        let path = dir.join(EPOCH_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load_epoch(&dir), 0, "corrupt epoch reads as 0");
        // A short (torn) file also reads as 0.
        std::fs::write(&path, [1, 2, 3]).unwrap();
        assert_eq!(load_epoch(&dir), 0);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn wal_reset_empties_the_log() {
        let dir = std::env::temp_dir().join(format!("rnn-wal-reset-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.wal");
        let _ = std::fs::remove_file(&path);

        let (mut wal, _) = Wal::open(&path, 4).unwrap();
        wal.append(&record(0, b"x")).unwrap();
        wal.append(&record(1, b"y")).unwrap();
        assert!(wal.bytes() > 0);
        wal.reset().unwrap();
        assert_eq!(wal.bytes(), 0);
        wal.append(&record(2, b"z")).unwrap();
        drop(wal);

        let (_, recovered) = Wal::open(&path, 1).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0, 2);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
