//! Byte transports under the RPC layer.
//!
//! A [`Transport`] moves *complete encoded frames* (the byte strings
//! produced by [`crate::frame::Frame::to_bytes`]) between a coordinator
//! and one shard service. Three implementations:
//!
//! * [`LoopbackTransport`] — in-process channel pairs, used by the tests
//!   and the benchmark harness. Its coordinator side takes a
//!   [`FaultPlan`] that can delay, reorder, or corrupt frames and crash
//!   the remote service on cue, so the retry/timeout/replay machinery is
//!   exercised deterministically without real sockets.
//! * [`StreamTransport`] over a Unix domain socket.
//! * [`StreamTransport`] over TCP.
//!
//! Stream transports do their own length-prefix reassembly: `recv`
//! returns exactly one frame's bytes (prefix included) however the bytes
//! arrived, and a partial frame survives an intervening timeout.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Why a `recv` produced no frame.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No frame arrived within the deadline; the caller may retransmit.
    Timeout,
    /// The peer is gone (socket closed, channel dropped, process dead).
    Closed,
    /// An I/O error other than a timeout.
    Io,
}

/// A bidirectional frame pipe to one peer.
pub trait Transport: Send {
    /// Queues one encoded frame for the peer.
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()>;
    /// Receives the next frame's bytes, waiting at most `timeout`.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, RecvError>;
}

/// Fault injection for the coordinator side of a loopback pair. All
/// counters are "every Nth send", making runs deterministic; `0`
/// disables that fault.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Added latency on the coordinator's receive path (slept before each
    /// poll). Delivery stays in order and no frame is lost; this only
    /// stretches wall-clock, verifying that answers are latency-invariant.
    pub delay: Duration,
    /// Hold back every Nth outbound frame and release it *after* the
    /// following send — real reordering as seen by the service, which the
    /// retry protocol must absorb.
    pub reorder_every: u32,
    /// Flip one byte (past the length prefix) of every Nth outbound
    /// frame. The service's checksum check must reject it, forcing a
    /// coordinator retransmit.
    pub corrupt_every: u32,
    /// Send every Nth outbound frame **twice**. The duplicate is
    /// byte-identical and arrives immediately behind the original, so
    /// the service's sequence-number dedup (and a replica's append
    /// dedup) must absorb it without reprocessing.
    pub duplicate_every: u32,
    /// One-way partition: after this many outbound frames, silently
    /// drop every further coordinator→service frame while the return
    /// path stays open. The coordinator's requests vanish but nothing
    /// looks "closed" — exactly the asymmetric failure that must burn
    /// the retry budget and then drive failover/fencing rather than a
    /// clean crash-recovery. `0` disables.
    pub partition_after_frames: u32,
    /// After this many frames have been delivered to the service, make
    /// its next `recv` report [`RecvError::Closed`] — the service exits
    /// as if its process died, and the coordinator must respawn + replay.
    /// `0` disables.
    pub crash_after_frames: u32,
    /// Make every *respawn* of this shard stillborn: the replacement
    /// transport connects to nothing, so each recovery attempt observes
    /// `Closed` immediately. With a crash injected this deterministically
    /// exhausts the client's bounded recovery budget and drives the link
    /// dead — the path that exercises engine takeover.
    pub respawn_dead: bool,
}

/// Coordinator end of an in-process loopback pair.
pub struct LoopbackTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    plan: FaultPlan,
    sent: u32,
    held: Option<Vec<u8>>,
}

/// Service end of an in-process loopback pair.
pub struct LoopbackPeer {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Frames this peer may still receive before it simulates a process
    /// crash (`None` = never).
    crash_budget: Option<u32>,
}

/// Creates a connected loopback pair: the coordinator side applies
/// `plan`'s faults to its outbound frames, the peer side is handed to a
/// [`crate::service::ShardService`].
pub fn loopback_pair(plan: FaultPlan) -> (LoopbackTransport, LoopbackPeer) {
    let (c2s_tx, c2s_rx) = std::sync::mpsc::channel();
    let (s2c_tx, s2c_rx) = std::sync::mpsc::channel();
    (
        LoopbackTransport {
            tx: c2s_tx,
            rx: s2c_rx,
            plan,
            sent: 0,
            held: None,
        },
        LoopbackPeer {
            tx: s2c_tx,
            rx: c2s_rx,
            crash_budget: (plan.crash_after_frames > 0).then_some(plan.crash_after_frames),
        },
    )
}

impl LoopbackTransport {
    fn deliver(&mut self, frame: Vec<u8>) {
        // A send after the peer crashed just drops the frame; the
        // coordinator discovers the death through recv and respawns.
        let _ = self.tx.send(frame);
    }
}

impl Transport for LoopbackTransport {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.sent += 1;
        if self.plan.partition_after_frames > 0 && self.sent > self.plan.partition_after_frames {
            // One-way partition: the outbound half is black-holed while
            // the inbound half stays connected, so the coordinator sees
            // only timeouts, never Closed.
            return Ok(());
        }
        let mut out = frame.to_vec();
        if self.plan.corrupt_every > 0 && self.sent % self.plan.corrupt_every == 0 && out.len() > 4
        {
            // Flip a payload-region byte; the length prefix stays intact
            // so the damage is the checksum's to catch.
            let idx = 4 + (self.sent as usize) % (out.len() - 4);
            if let Some(b) = out.get_mut(idx) {
                *b ^= 0x40;
            }
        }
        if self.plan.reorder_every > 0 && self.sent % self.plan.reorder_every == 0 {
            // Hold this frame; it goes out after the *next* one.
            if let Some(prev) = self.held.replace(out) {
                self.deliver(prev);
            }
            return Ok(());
        }
        let duplicate = (self.plan.duplicate_every > 0
            && self.sent % self.plan.duplicate_every == 0)
            .then(|| out.clone());
        self.deliver(out);
        if let Some(copy) = duplicate {
            self.deliver(copy);
        }
        if let Some(held) = self.held.take() {
            self.deliver(held);
        }
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, RecvError> {
        if !self.plan.delay.is_zero() {
            std::thread::sleep(self.plan.delay);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(frame),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }
}

impl Transport for LoopbackPeer {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        let _ = self.tx.send(frame.to_vec());
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, RecvError> {
        if let Some(budget) = &mut self.crash_budget {
            if *budget == 0 {
                // Simulated process death: every subsequent recv fails,
                // and dropping the service drops `tx`, which the
                // coordinator observes as Closed.
                return Err(RecvError::Closed);
            }
        }
        let frame = match self.rx.recv_timeout(timeout) {
            Ok(frame) => frame,
            Err(RecvTimeoutError::Timeout) => return Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => return Err(RecvError::Closed),
        };
        if let Some(budget) = &mut self.crash_budget {
            *budget -= 1;
        }
        Ok(frame)
    }
}

/// A frame transport over any byte stream (Unix domain socket, TCP).
/// Handles its own reassembly: partially received frames are buffered
/// across calls, so a timeout mid-frame loses nothing.
pub struct StreamTransport<S> {
    stream: S,
    buf: Vec<u8>,
}

impl<S: ReadWriteStream> StreamTransport<S> {
    /// Wraps a connected stream.
    pub fn new(stream: S) -> Self {
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    /// The complete first frame in `buf`, if any.
    fn take_frame(&mut self) -> Option<Vec<u8>> {
        let header: [u8; 4] = self.buf.get(..4)?.try_into().ok()?;
        let len = u32::from_le_bytes(header) as usize;
        let total = 4 + len;
        if self.buf.len() < total {
            return None;
        }
        let rest = self.buf.split_off(total);
        Some(std::mem::replace(&mut self.buf, rest))
    }
}

impl<S: ReadWriteStream> Transport for StreamTransport<S> {
    fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(frame)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, RecvError> {
        if let Some(frame) = self.take_frame() {
            return Ok(frame);
        }
        self.stream
            .set_timeout(Some(timeout))
            .map_err(|_| RecvError::Io)?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(RecvError::Closed),
                Ok(n) => {
                    // A `read` returning n > chunk.len() would violate the
                    // Read contract; treat it as an I/O fault, not a panic.
                    let read = chunk.get(..n).ok_or(RecvError::Io)?;
                    self.buf.extend_from_slice(read);
                    if let Some(frame) = self.take_frame() {
                        return Ok(frame);
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(RecvError::Timeout)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(RecvError::Io),
            }
        }
    }
}

/// The slice of stream behaviour [`StreamTransport`] needs, implemented
/// for [`UnixStream`] and [`TcpStream`] (whose read-timeout setters are
/// inherent methods, not a trait).
pub trait ReadWriteStream: Read + Write + Send {
    /// Sets the read timeout (`None` = block forever).
    fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl ReadWriteStream for UnixStream {
    fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

impl ReadWriteStream for TcpStream {
    fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const T: Duration = Duration::from_millis(200);

    #[test]
    fn loopback_delivers_in_order_without_faults() {
        let (mut co, mut svc) = loopback_pair(FaultPlan::default());
        co.send(b"one").unwrap();
        co.send(b"two").unwrap();
        assert_eq!(svc.recv_timeout(T).unwrap(), b"one");
        assert_eq!(svc.recv_timeout(T).unwrap(), b"two");
        svc.send(b"ack").unwrap();
        assert_eq!(co.recv_timeout(T).unwrap(), b"ack");
    }

    #[test]
    fn reorder_swaps_the_held_frame_behind_the_next() {
        let (mut co, mut svc) = loopback_pair(FaultPlan {
            reorder_every: 2,
            ..Default::default()
        });
        co.send(b"a").unwrap(); // 1st: delivered
        co.send(b"b").unwrap(); // 2nd: held
        co.send(b"c").unwrap(); // 3rd: delivered, then releases b
        assert_eq!(svc.recv_timeout(T).unwrap(), b"a");
        assert_eq!(svc.recv_timeout(T).unwrap(), b"c");
        assert_eq!(svc.recv_timeout(T).unwrap(), b"b");
    }

    #[test]
    fn duplicate_every_delivers_the_nth_frame_twice() {
        let (mut co, mut svc) = loopback_pair(FaultPlan {
            duplicate_every: 2,
            ..Default::default()
        });
        co.send(b"a").unwrap(); // 1st: once
        co.send(b"b").unwrap(); // 2nd: twice
        co.send(b"c").unwrap(); // 3rd: once
        assert_eq!(svc.recv_timeout(T).unwrap(), b"a");
        assert_eq!(svc.recv_timeout(T).unwrap(), b"b");
        assert_eq!(svc.recv_timeout(T).unwrap(), b"b");
        assert_eq!(svc.recv_timeout(T).unwrap(), b"c");
    }

    #[test]
    fn one_way_partition_drops_outbound_but_not_inbound() {
        let (mut co, mut svc) = loopback_pair(FaultPlan {
            partition_after_frames: 1,
            ..Default::default()
        });
        co.send(b"through").unwrap(); // 1st: delivered
        co.send(b"lost").unwrap(); // 2nd: black-holed
        assert_eq!(svc.recv_timeout(T).unwrap(), b"through");
        assert_eq!(svc.recv_timeout(T).unwrap_err(), RecvError::Timeout);
        // The return path is unaffected by the partition.
        svc.send(b"reply").unwrap();
        assert_eq!(co.recv_timeout(T).unwrap(), b"reply");
    }

    #[test]
    fn crash_budget_kills_the_peer_after_n_frames() {
        let (mut co, mut svc) = loopback_pair(FaultPlan {
            crash_after_frames: 1,
            ..Default::default()
        });
        co.send(b"first").unwrap();
        co.send(b"second").unwrap();
        assert_eq!(svc.recv_timeout(T).unwrap(), b"first");
        assert_eq!(svc.recv_timeout(T).unwrap_err(), RecvError::Closed);
    }

    #[test]
    fn unix_stream_transport_reassembles_split_frames() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut co = StreamTransport::new(a);
        let mut svc = StreamTransport::new(b);
        // Two length-prefixed frames sent as one write: recv must split.
        let mut bytes = Vec::new();
        for payload in [&b"hello"[..], &b"worlds!"[..]] {
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(payload);
        }
        co.send(&bytes).unwrap();
        let f1 = svc.recv_timeout(T).unwrap();
        let f2 = svc.recv_timeout(T).unwrap();
        assert_eq!(&f1[4..], b"hello");
        assert_eq!(&f2[4..], b"worlds!");
        drop(co);
        assert_eq!(svc.recv_timeout(T).unwrap_err(), RecvError::Closed);
    }
}
