//! The shard side of the RPC layer: a [`ShardService`] owns one monitor
//! and serves the engine's delta protocol over any [`Transport`].
//!
//! The service is deliberately dumb — all retry/timeout/replay policy
//! lives at the coordinator ([`crate::client::RemoteShard`]). Its one
//! responsibility beyond "decode, tick, reply" is **duplicate
//! suppression**: requests carry a strictly increasing sequence number,
//! and the service caches its last encoded reply so a retransmitted
//! request is answered from the cache instead of being applied twice
//! (which would corrupt monitor state). Frames older than the last
//! processed sequence are dropped outright — they are retransmission
//! echoes the coordinator has already stopped waiting for. Corrupt
//! frames (checksum mismatch) are silently dropped; the coordinator's
//! timeout drives the retransmit.

use std::path::Path;
use std::time::Duration;

use rnn_core::ContinuousMonitor;
use rnn_engine::{DeltaBatch, ShardTickState};
use rnn_roadnet::{WireCodec, WireReader};

use crate::frame::{Frame, MsgTag};
use crate::transport::{RecvError, StreamTransport, Transport};

/// How long one service poll waits before re-polling. Purely a liveness
/// knob (lets the loop notice a closed transport); correctness never
/// depends on it.
const POLL: Duration = Duration::from_millis(250);

/// One shard's server: a monitor plus the shard-side half of the delta
/// protocol, driven by frames from a single coordinator connection.
pub struct ShardService<T: Transport> {
    transport: T,
    monitor: Box<dyn ContinuousMonitor>,
    state: ShardTickState,
    attribute_cells: bool,
    /// Highest request sequence processed, and the encoded reply frame it
    /// produced (re-sent verbatim on a duplicate).
    last: Option<(u32, Vec<u8>)>,
    /// Leadership epoch this service serves under. Frames stamped with
    /// an older epoch are fenced (dropped without a reply — the stale
    /// leader's retry budget burns out instead of its writes merging);
    /// newer epochs are adopted. Plain services start at 0, which
    /// accepts everything.
    epoch: u32,
}

impl<T: Transport> ShardService<T> {
    /// Wraps `monitor` behind `transport`. `attribute_cells` mirrors the
    /// in-process worker's flag: when set, per-cell expansion charges are
    /// drained into every reply for the engine's rebalance planner.
    pub fn new(transport: T, monitor: Box<dyn ContinuousMonitor>, attribute_cells: bool) -> Self {
        Self {
            transport,
            monitor,
            state: ShardTickState::new(),
            attribute_cells,
            last: None,
            epoch: 0,
        }
    }

    /// Resumes service from pre-built state — the promotion path: a
    /// [`crate::replica::ReplicaNode`] that has installed its snapshot
    /// and replayed its log suffix hands over the monitor, the tick
    /// state, the seeded duplicate-suppression cache, and the epoch it
    /// was promoted under.
    pub(crate) fn resume(
        transport: T,
        monitor: Box<dyn ContinuousMonitor>,
        attribute_cells: bool,
        state: ShardTickState,
        last: Option<(u32, Vec<u8>)>,
        epoch: u32,
    ) -> Self {
        Self {
            transport,
            monitor,
            state,
            attribute_cells,
            last,
            epoch,
        }
    }

    /// Serves requests until a shutdown frame arrives or the transport
    /// reports the coordinator gone.
    pub fn run(mut self) {
        loop {
            let bytes = match self.transport.recv_timeout(POLL) {
                Ok(bytes) => bytes,
                Err(RecvError::Timeout) => continue,
                Err(RecvError::Closed) | Err(RecvError::Io) => return,
            };
            // Undecodable frames (corruption, truncation) are dropped;
            // the coordinator's timeout handles recovery.
            let Ok(frame) = Frame::from_bytes(&bytes) else {
                continue;
            };
            if frame.epoch < self.epoch {
                // Fencing: a stale leader's frame is dropped without a
                // reply; its timeout-driven retries exhaust against
                // silence instead of merging stale writes.
                continue;
            }
            self.epoch = frame.epoch;
            match &self.last {
                Some((seq, reply)) if frame.seq == *seq => {
                    // Retransmitted request: resend the cached reply, do
                    // NOT reprocess (ticks are not idempotent).
                    let _ = self.transport.send(reply);
                    continue;
                }
                Some((seq, _)) if frame.seq < *seq => continue, // stale echo
                _ => {}
            }
            let payload = match self.process(&frame) {
                Processed::Reply(payload) => payload,
                Processed::Drop => continue,
                Processed::Shutdown => return,
            };
            let reply_tag = match frame.tag {
                MsgTag::MemoryRequest => MsgTag::MemoryReply,
                MsgTag::SnapshotRequest => MsgTag::SnapshotReply,
                MsgTag::SnapshotInstall => MsgTag::RestoreReply,
                _ => MsgTag::TickReply,
            };
            let reply = Frame {
                tag: reply_tag,
                seq: frame.seq,
                epoch: self.epoch,
                payload,
            }
            .to_bytes();
            let _ = self.transport.send(&reply);
            self.last = Some((frame.seq, reply));
        }
    }

    /// Executes one fresh request.
    fn process(&mut self, frame: &Frame) -> Processed {
        let mut payload = Vec::new();
        match frame.tag {
            MsgTag::TickEvents | MsgTag::ResyncEvents | MsgTag::MigrationEvents => {
                let mut r = WireReader::new(&frame.payload);
                // The checksum vouched for these bytes, so a failure here
                // is a codec-version mismatch rather than line noise —
                // but either way the shard must not die on a frame: drop
                // it and let the coordinator's timeout retransmit.
                let Ok(delta) = DeltaBatch::decode(&mut r) else {
                    return Processed::Drop;
                };
                let outcome = self
                    .state
                    .run_tick(&mut *self.monitor, delta, self.attribute_cells);
                outcome.encode(&mut payload);
            }
            MsgTag::MemoryRequest => self.monitor.memory().encode(&mut payload),
            MsgTag::SnapshotRequest => {
                // An empty payload tells the coordinator this monitor
                // cannot snapshot; it then disables the cycle.
                if let Some(state) = self.monitor.snapshot_state() {
                    payload = state.to_bytes();
                }
            }
            MsgTag::SnapshotInstall => {
                let ok = match rnn_core::MonitorState::from_bytes(&frame.payload) {
                    Ok(state) => {
                        let restored = state.restore_into(&mut *self.monitor).is_ok();
                        if restored {
                            // Seed the shipped-result cache from the
                            // restored results, so post-restore replies
                            // (and `results_changed`) are bit-identical
                            // to an uncrashed shard's.
                            self.state.prime(&state.queries);
                        }
                        restored
                    }
                    Err(_) => false,
                };
                payload.push(u8::from(ok));
            }
            MsgTag::Shutdown => return Processed::Shutdown,
            // A reply tag arriving at the service is a stray echo of our
            // own output; replication-role frames belong to a
            // `ReplicaNode`, not a serving shard. Drop both kinds.
            MsgTag::TickReply
            | MsgTag::MemoryReply
            | MsgTag::SnapshotReply
            | MsgTag::RestoreReply
            | MsgTag::Append
            | MsgTag::AppendAck
            | MsgTag::Heartbeat
            | MsgTag::Promote
            | MsgTag::SnapshotOffer => return Processed::Drop,
        }
        Processed::Reply(payload)
    }
}

/// Outcome of handling one fresh (non-duplicate) request frame.
enum Processed {
    /// Send this payload back under the matching reply tag.
    Reply(Vec<u8>),
    /// Ignore the frame entirely (undecodable payload or stray echo); the
    /// coordinator's timeout owns recovery.
    Drop,
    /// Stop serving.
    Shutdown,
}

/// Binds `path`, accepts exactly one coordinator connection, and serves
/// `monitor` on it until shutdown. This is the entry point a shard
/// *process* calls (see `examples/cluster_city.rs`).
pub fn serve_unix(
    path: &Path,
    monitor: Box<dyn ContinuousMonitor>,
    attribute_cells: bool,
) -> std::io::Result<()> {
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    let (stream, _) = listener.accept()?;
    ShardService::new(StreamTransport::new(stream), monitor, attribute_cells).run();
    Ok(())
}

/// Like [`serve_unix`] over TCP: binds `addr`, accepts one coordinator,
/// serves until shutdown.
pub fn serve_tcp(
    addr: std::net::SocketAddr,
    monitor: Box<dyn ContinuousMonitor>,
    attribute_cells: bool,
) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    let (stream, _) = listener.accept()?;
    ShardService::new(StreamTransport::new(stream), monitor, attribute_cells).run();
    Ok(())
}
